"""--pipe mode: block splitting and stdin delivery."""

import pytest

from repro import Parallel
from repro.core.pipemode import iter_lines, split_blocks, split_records
from repro.errors import OptionsError


# ----------------------------------------------------------------- splitters
def test_iter_lines_from_string():
    assert list(iter_lines("a\nb\nc")) == ["a\n", "b\n", "c\n"]


def test_iter_lines_from_iterable_adds_newlines():
    assert list(iter_lines(["a", "b\n"])) == ["a\n", "b\n"]


def test_split_records_exact_counts():
    blocks = list(split_records("1\n2\n3\n4\n5", 2))
    assert blocks == ["1\n2\n", "3\n4\n", "5\n"]


def test_split_records_single():
    assert list(split_records("x\ny", 1)) == ["x\n", "y\n"]


def test_split_records_validation():
    with pytest.raises(OptionsError):
        list(split_records("x", 0))


def test_split_blocks_respects_record_boundaries():
    text = "\n".join(f"line{i}" for i in range(10))
    blocks = list(split_blocks(text, block_bytes=15))
    assert "".join(blocks) == text + "\n"
    # No block starts or ends mid-record.
    for b in blocks:
        assert b.endswith("\n")


def test_split_blocks_oversized_record_gets_own_block():
    text = "short\n" + "x" * 100 + "\nshort2\n"
    blocks = list(split_blocks(text, block_bytes=10))
    assert any("x" * 100 in b for b in blocks)
    assert "".join(blocks) == text


def test_split_blocks_validation():
    with pytest.raises(OptionsError):
        list(split_blocks("x", 0))


def test_split_blocks_everything_fits_one_block():
    assert list(split_blocks("a\nb\n", block_bytes=1 << 20)) == ["a\nb\n"]


# --------------------------------------------------------------- engine.pipe
def test_pipe_wc_counts_all_lines():
    text = "\n".join(str(i) for i in range(100))
    summary = Parallel("wc -l", jobs=4).pipe(text, n_records=10)
    assert summary.ok
    assert summary.n_succeeded == 10  # 100 lines / 10 per block
    total = sum(int(r.stdout.strip()) for r in summary.results)
    assert total == 100


def test_pipe_block_size_mode():
    text = "\n".join("word" for _ in range(50))
    summary = Parallel("cat", jobs=2).pipe(text, block_size=60)
    assert summary.ok
    joined = "".join(r.stdout for r in summary.sorted_results())
    assert joined == text + "\n"


def test_pipe_keep_order_reassembles_stream():
    text = "\n".join(str(i) for i in range(40))
    emitted = []
    p = Parallel("cat", jobs=4, keep_order=True,
                 output=lambda r, t: emitted.append(t))
    summary = p.pipe(text, n_records=7)
    assert summary.ok
    assert "".join(emitted) == text + "\n"


def test_pipe_seq_token_still_renders():
    summary = Parallel("sed s/^/{#}:/", jobs=1, keep_order=True).pipe(
        "a\nb\nc\nd", n_records=2
    )
    outs = [r.stdout for r in summary.sorted_results()]
    assert outs == ["1:a\n1:b\n", "2:c\n2:d\n"]


def test_pipe_command_not_substituted_with_block():
    summary = Parallel("head -n 1", jobs=1).pipe("first\nsecond", n_records=2)
    assert summary.results[0].stdout == "first\n"
    assert "first" not in summary.results[0].command


def test_pipe_with_callable_rejected():
    with pytest.raises(TypeError):
        Parallel(lambda x: x).pipe("a\nb")


def test_pipe_failure_propagates():
    summary = Parallel("exit 3", jobs=1).pipe("a\nb", n_records=1)
    assert summary.n_failed == 2
    assert all(r.exit_code == 3 for r in summary.results)
