"""Streaming result plane: bounded retention, lazy sources, O(1) memory.

Million-job runs must not grow the coordinator linearly: ``RunSummary``
keeps a bounded window of recent results (``--keep-results``, default
10,000) while aggregates (counts, exit histogram, mean runtime, launch
rate) stay exact via incremental accumulators, and generator input
sources are consumed lazily — the scheduler holds O(slots + batch)
state, never the whole run.  The 100k-job smoke at the bottom pins the
actual coordinator RSS under a ceiling well below what unbounded
retention measures on the same workload (~85 MB vs ~36 MB here).
"""

import hashlib
import os
import subprocess
import sys
import textwrap

import pytest

from repro import Parallel
from repro.core.inputs import shuffled
from repro.core.results import retention_buffer

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


# ------------------------------------------------------- retention buffer
def test_retention_buffer_shapes():
    unbounded = retention_buffer(None)
    assert isinstance(unbounded, list)
    window = retention_buffer(5)
    assert getattr(window, "maxlen") == 5
    empty = retention_buffer(0)
    empty.append("x")
    assert len(empty) == 0
    with pytest.raises(ValueError):
        retention_buffer(-1)


# ----------------------------------------------------- bounded aggregates
def test_bounded_window_keeps_latest_aggregates_stay_exact():
    # Serial (jobs=1) so completion order == seq order: the window must
    # hold exactly the last 10 seqs while every aggregate covers all 50.
    summary = Parallel(lambda x: x, jobs=1, keep_results=10).run(range(50))
    assert summary.ok
    assert summary.n_completed == 50
    assert summary.n_succeeded == 50
    assert summary.n_results_dropped == 40
    assert len(summary.results) == 10
    assert sorted(r.seq for r in summary.results) == list(range(41, 51))
    assert summary.exit_counts == {0: 50}
    assert summary.mean_runtime >= 0.0
    assert summary.observed_launch_rate > 0.0


def test_keep_results_all_retains_everything():
    summary = Parallel(lambda x: x, jobs=2, keep_results="all").run(range(30))
    assert summary.n_completed == 30
    assert len(summary.results) == 30
    assert summary.n_results_dropped == 0


def test_keep_results_zero_counts_only():
    summary = Parallel(lambda x: x, jobs=2, keep_results=0).run(range(12))
    assert summary.ok
    assert summary.n_completed == 12
    assert len(summary.results) == 0
    assert summary.n_results_dropped == 12
    assert summary.exit_counts == {0: 12}


def test_to_dict_reports_retention():
    summary = Parallel(lambda x: x, jobs=1, keep_results=4).run(range(9))
    d = summary.to_dict()
    assert d["n_completed"] == 9
    assert d["n_results_dropped"] == 5
    assert d["results_retained"] == 4
    assert d["exit_counts"] == {"0": 9}
    assert len(d["results"]) == 4


def test_map_widens_auto_retention():
    # map() must hand back every value even past the default window, so
    # keep_results="auto" widens to "all" for that call only.
    engine = Parallel(lambda x: int(x) * 2, jobs=4)
    assert engine.map(range(100)) == [x * 2 for x in range(100)]
    assert engine.options.keep_results == "auto"  # engine state untouched


# --------------------------------------------------------- output parity
def test_retention_does_not_change_emitted_output():
    # The output plane streams results as they complete; the retention
    # window only affects what the summary keeps afterwards.
    def run(keep):
        chunks = []
        engine = Parallel(
            "echo line-{}",
            output=lambda _res, text: chunks.append(text),
            jobs=3, keep_order=True, keep_results=keep,
        )
        summary = engine.run(range(1, 25))
        assert summary.ok
        return hashlib.sha256("".join(chunks).encode()).hexdigest()

    assert run(4) == run("all")


# ------------------------------------------------------------ lazy source
def test_generator_source_consumed_lazily():
    pulled = []

    def source():
        i = 0
        while True:  # unbounded: full materialization would never return
            pulled.append(i)
            yield i
            i += 1

    summary = Parallel(
        lambda x: x, jobs=2, halt="now,success=3"
    ).run(source())
    assert summary.halted
    assert summary.n_succeeded >= 3
    # The scheduler read only a dispatch window's worth, not "everything".
    assert len(pulled) < 100


def test_shuffled_materializes_once_as_list():
    groups = shuffled((f"in-{i}" for i in range(10)), seed=7)
    assert isinstance(groups, list)  # reusable: len() + iteration
    assert len(groups) == 10
    assert shuffled((f"in-{i}" for i in range(10)), seed=7) == groups


def test_shuf_run_is_a_permutation():
    chunks = []
    engine = Parallel(
        "echo {}", output=lambda _res, text: chunks.append(text),
        jobs=2, shuf=True, keep_order=True,
    )
    summary = engine.run(range(1, 13))
    assert summary.ok
    assert sorted("".join(chunks).split()) == sorted(
        str(i) for i in range(1, 13)
    )


# ------------------------------------------------------- 100k RSS ceiling
#: ru_maxrss ceiling (KiB) for the bounded 100k-job run.  Measured ~36 MB
#: bounded vs ~85 MB with --keep-results all on this workload, so 64 MiB
#: fails if retention regresses to linear growth but has ~2x headroom
#: over the bounded path's real footprint.
RSS_CEILING_KIB = 64 * 1024


def test_100k_jobs_bounded_coordinator_rss():
    """End-to-end streaming smoke: 100k jobs from a generator source.

    Runs in a child interpreter so the measurement reflects this run
    alone.  The child reports VmHWM where available, not ru_maxrss:
    the rusage counter is a fork-inherited high-water mark (the child
    briefly shares the parent's COW-resident pages before exec), so
    under a full pytest run it floors at the *parent's* RSS.
    """
    code = textwrap.dedent(
        """
        import resource, sys
        from repro import Parallel

        summary = Parallel(lambda x: None, jobs=8).run(
            iter(range(100_000))
        )
        assert summary.ok, "run failed"
        assert summary.n_completed == 100_000, summary.n_completed
        assert summary.n_results_dropped == 90_000, summary.n_results_dropped
        assert len(summary.results) == 10_000
        assert summary.coordinator_rss > 0
        peak_kib = 0
        try:
            with open("/proc/self/status") as fh:
                for line in fh:
                    if line.startswith("VmHWM:"):
                        peak_kib = int(line.split()[1])
        except OSError:
            pass
        if not peak_kib:
            peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            if sys.platform == "darwin":
                peak_kib //= 1024
        print(peak_kib)
        """
    )
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env,
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    rss_kib = int(proc.stdout.strip())  # child normalizes to KiB
    assert rss_kib < RSS_CEILING_KIB, (
        f"coordinator RSS {rss_kib} KiB >= ceiling {RSS_CEILING_KIB} KiB"
    )
