"""Container runtime models (Figs. 4-5 calibration)."""

import numpy as np
import pytest

from repro.containers import (
    BARE_METAL,
    PODMAN_FAILURE_MODES,
    PODMAN_HPC,
    SHIFTER,
    ContainerRuntime,
)
from repro.errors import ContainerError


def test_bare_metal_ceiling_is_fork_rate():
    assert BARE_METAL.effective_ceiling(6400.0) == 6400.0
    assert BARE_METAL.startup_overhead_vs_bare(6400.0) == 0.0


def test_shifter_ceiling_and_19_percent_overhead():
    assert SHIFTER.effective_ceiling(6400.0) == 5200.0
    assert SHIFTER.startup_overhead_vs_bare(6400.0) == pytest.approx(0.19, abs=0.005)


def test_podman_ceiling_65():
    assert PODMAN_HPC.effective_ceiling(6400.0) == 65.0


def test_ceiling_never_exceeds_fork_rate():
    rt = ContainerRuntime(name="x", serial_rate=10_000.0)
    assert rt.effective_ceiling(6400.0) == 6400.0


def test_failure_probability_grows_with_load():
    p0 = PODMAN_HPC.failure_probability(0)
    p100 = PODMAN_HPC.failure_probability(100)
    assert p100 > p0 > 0


def test_failure_probability_capped():
    assert PODMAN_HPC.failure_probability(10**9) == PODMAN_HPC.max_failure_prob


def test_shifter_effectively_reliable():
    rng = np.random.default_rng(0)
    fails = sum(SHIFTER.draw_failure(rng, 100) is not None for _ in range(2000))
    assert fails == 0


def test_podman_failures_use_reported_modes():
    rng = np.random.default_rng(0)
    modes = set()
    for _ in range(5000):
        m = PODMAN_HPC.draw_failure(rng, in_flight=500)
        if m:
            modes.add(m)
    assert modes  # failures do occur under load
    assert modes <= set(PODMAN_FAILURE_MODES)


def test_raise_failure():
    with pytest.raises(ContainerError) as ei:
        PODMAN_HPC.raise_failure("db_lock")
    assert ei.value.reason == "db_lock"


def test_draw_failure_none_when_no_failure_model():
    rng = np.random.default_rng(0)
    assert BARE_METAL.draw_failure(rng, 1000) is None
