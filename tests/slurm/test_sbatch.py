"""sbatch script parsing and execution of the paper's Listing 5."""

import pytest

from repro.baselines import LISTING_5_PARALLEL_SCRIPT
from repro.errors import SlurmError
from repro.slurm import SbatchJob, parse_sbatch, parse_walltime


# -------------------------------------------------------------- walltime
@pytest.mark.parametrize(
    "spec,seconds",
    [
        ("30", 30 * 60),
        ("30:15", 30 * 60 + 15),
        ("2:30:15", 2 * 3600 + 30 * 60 + 15),
        ("1-12", 36 * 3600),
        ("1-12:30", 36 * 3600 + 30 * 60),
        ("2-00:00:30", 48 * 3600 + 30),
    ],
)
def test_parse_walltime_forms(spec, seconds):
    assert parse_walltime(spec) == seconds


@pytest.mark.parametrize("bad", ["", "x", "1:2:3:4", "a-1", "1-a"])
def test_parse_walltime_rejects(bad):
    with pytest.raises(SlurmError):
        parse_walltime(bad)


# --------------------------------------------------------------- parsing
SCRIPT = """\
#!/bin/bash
#SBATCH -N 4
#SBATCH -n 16
#SBATCH -t 1:30:00
#SBATCH --job-name=darshan
# a plain comment
module load parallel cray-python

parallel -j36 echo {} ::: a b c
"""


def test_parse_directives():
    job = parse_sbatch(SCRIPT)
    assert job.nodes == 4
    assert job.ntasks == 16
    assert job.walltime_s == 5400
    assert job.job_name == "darshan"
    assert "parallel" in job.modules and "cray-python" in job.modules


def test_body_excludes_comments_and_shebang():
    job = parse_sbatch(SCRIPT)
    assert all(not ln.strip().startswith("#") for ln in job.body)
    assert any("parallel -j36" in ln for ln in job.body)


def test_parallel_lines_extraction():
    job = parse_sbatch(SCRIPT)
    assert job.parallel_lines() == ["parallel -j36 echo {} ::: a b c"]


def test_parallel_lines_continuation():
    job = parse_sbatch(
        "#SBATCH -N 1\nparallel -j4 \\\n  echo {} \\\n  ::: x y\n"
    )
    assert job.parallel_lines() == ["parallel -j4 echo {} ::: x y"]


def test_run_parallel_lines_dry():
    job = parse_sbatch(SCRIPT)
    [summary] = job.run_parallel_lines(dry_run=True)
    assert summary.n_dispatched == 3


def test_run_without_parallel_invocation_errors():
    job = parse_sbatch("#SBATCH -N 1\necho hello\n")
    with pytest.raises(SlurmError):
        job.run_parallel_lines()


def test_paper_listing5_end_to_end():
    """The paper's Listing 5 parses and expands to the full 36-task grid."""
    job = parse_sbatch(LISTING_5_PARALLEL_SCRIPT)
    assert job.nodes == 1
    assert job.modules == ["parallel", "cray-python"]
    [summary] = job.run_parallel_lines(dry_run=True)
    assert summary.n_dispatched == 36
    commands = {r.stdout.strip() for r in summary.results}
    assert "python3 ./darshan_arch.py 1 0" in commands
    assert "python3 ./darshan_arch.py 12 2" in commands


def test_sbatch_equals_form():
    job = parse_sbatch("#SBATCH --nodes=9\n#SBATCH --time=10\nparallel echo ::: a\n")
    assert job.nodes == 9 and job.walltime_s == 600
