"""Allocations, node environments, and the srun cost model."""

import pytest

from repro.cluster import FRONTIER, SimMachine
from repro.errors import SlurmError
from repro.sim import Environment
from repro.slurm import Allocation, SlurmController, SrunCostModel


def make_alloc(n=4, seed=0):
    env = Environment()
    m = SimMachine(env, FRONTIER, seed=seed)
    return env, Allocation(m, n)


def test_allocation_size_validation():
    env = Environment()
    m = SimMachine(env, FRONTIER)
    with pytest.raises(SlurmError):
        Allocation(m, 0)
    with pytest.raises(SlurmError):
        Allocation(m, FRONTIER.total_nodes + 1)


def test_env_vars_match_listing_1():
    _, alloc = make_alloc(n=8)
    env2 = alloc.env_for(2)
    assert env2.as_dict() == {"SLURM_NNODES": "8", "SLURM_NODEID": "2"}


def test_env_for_out_of_range():
    _, alloc = make_alloc(n=4)
    with pytest.raises(SlurmError):
        alloc.env_for(4)
    with pytest.raises(SlurmError):
        alloc.env_for(-1)


def test_ready_times_positive_per_node():
    _, alloc = make_alloc(n=16)
    assert all(alloc.ready_time(i) > 0 for i in range(16))
    with pytest.raises(SlurmError):
        alloc.ready_time(16)


def test_allocation_deterministic_by_seed_and_jobid():
    _, a = make_alloc(n=8, seed=5)
    _, b = make_alloc(n=8, seed=5)
    assert list(a.ready_times) == list(b.ready_times)


def test_node_accessor_bounds():
    _, alloc = make_alloc(n=2)
    assert alloc.node(0).name.endswith("00000")
    with pytest.raises(SlurmError):
        alloc.node(2)


# --------------------------------------------------------------------- srun
def test_srun_serializes_at_controller():
    env = Environment()
    ctl = SlurmController(env, SrunCostModel(step_setup_s=0.0, controller_rate=10.0))
    ends = []

    def launcher():
        yield from ctl.srun(duration=0.0)
        ends.append(env.now)

    for _ in range(5):
        env.process(launcher())
    env.run()
    assert ends == [pytest.approx(0.1 * (i + 1)) for i in range(5)]
    assert ctl.steps_created == 5


def test_srun_setup_and_duration():
    env = Environment()
    ctl = SlurmController(env, SrunCostModel(step_setup_s=0.5, controller_rate=1000.0))

    def launcher():
        yield from ctl.srun(duration=2.0)

    p = env.process(launcher())
    env.run(until=p)
    assert env.now == pytest.approx(0.5 + 0.001 + 2.0)
