"""FIFO + backfill batch-queue scheduling."""

import pytest

from repro.errors import SlurmError
from repro.slurm import QueuedJob, schedule_fifo_backfill


def J(jid, nodes, runtime, walltime=None, submit=0.0):
    return QueuedJob(job_id=jid, nodes=nodes, runtime_s=runtime,
                     walltime_s=walltime, submit_s=submit)


def test_single_job_starts_immediately():
    s = schedule_fifo_backfill([J(1, 4, 100)], total_nodes=8)
    assert s.start_times[1] == 0.0
    assert s.end_times[1] == 100.0
    assert s.makespan == 100.0


def test_jobs_pack_when_they_fit():
    s = schedule_fifo_backfill([J(1, 4, 100), J(2, 4, 100)], total_nodes=8)
    assert s.start_times[1] == 0.0 and s.start_times[2] == 0.0


def test_fifo_blocks_oversized_head():
    s = schedule_fifo_backfill(
        [J(1, 8, 100), J(2, 8, 100)], total_nodes=8
    )
    assert s.start_times[2] == pytest.approx(100.0)


def test_head_waits_for_enough_nodes():
    # Job 1 uses 6 of 8; job 2 needs 4 -> must wait for job 1.
    s = schedule_fifo_backfill([J(1, 6, 50), J(2, 4, 10)], total_nodes=8)
    assert s.start_times[2] == pytest.approx(50.0)


def test_backfill_small_short_job_jumps_queue():
    # Head (job 2) needs the whole machine and waits for job 1; job 3 is
    # small and short enough to finish before job 1's walltime ends.
    jobs = [J(1, 6, 100, walltime=100), J(2, 8, 50, walltime=50),
            J(3, 2, 20, walltime=20)]
    s = schedule_fifo_backfill(jobs, total_nodes=8)
    assert s.start_times[3] == 0.0  # backfilled
    assert s.start_times[2] == pytest.approx(100.0)


def test_backfill_never_delays_head():
    # A long small job must NOT backfill in front of the waiting head.
    jobs = [J(1, 6, 100, walltime=100), J(2, 8, 50, walltime=50),
            J(3, 2, 500, walltime=500)]
    s = schedule_fifo_backfill(jobs, total_nodes=8)
    assert s.start_times[2] == pytest.approx(100.0)  # head unharmed
    assert s.start_times[3] >= s.start_times[2]


def test_backfill_disabled_strict_fifo():
    jobs = [J(1, 6, 100), J(2, 8, 50), J(3, 2, 20)]
    s = schedule_fifo_backfill(jobs, total_nodes=8, backfill=False)
    assert s.start_times[3] >= s.start_times[2]


def test_submit_times_respected():
    s = schedule_fifo_backfill([J(1, 2, 10, submit=100.0)], total_nodes=4)
    assert s.start_times[1] == pytest.approx(100.0)


def test_wait_metrics():
    jobs = [J(1, 8, 100), J(2, 8, 100)]
    s = schedule_fifo_backfill(jobs, total_nodes=8)
    assert s.wait_time(jobs[0]) == 0.0
    assert s.wait_time(jobs[1]) == pytest.approx(100.0)
    assert s.mean_wait(jobs) == pytest.approx(50.0)


def test_many_small_jobs_serialize_on_capacity():
    # 100 single-node 10 s jobs on 10 nodes: 10 waves -> makespan 100 s.
    jobs = [J(i, 1, 10) for i in range(100)]
    s = schedule_fifo_backfill(jobs, total_nodes=10)
    assert s.makespan == pytest.approx(100.0)


def test_validation():
    with pytest.raises(SlurmError):
        QueuedJob(1, 0, 10)
    with pytest.raises(SlurmError):
        QueuedJob(1, 1, 10, walltime_s=5)
    with pytest.raises(SlurmError):
        schedule_fifo_backfill([J(1, 9, 1)], total_nodes=8)
    with pytest.raises(SlurmError):
        schedule_fifo_backfill([], total_nodes=0)
