"""DTN parallel data motion vs the sequential baseline."""

import pytest

from repro.cluster import DTN_CLUSTER, SimMachine
from repro.dtn import run_dtn_transfer, run_sequential_transfer
from repro.errors import ReproError
from repro.sim import Environment
from repro.storage import Filesystem, RsyncCostModel, lognormal_tree, uniform_files


def setup_machine():
    env = Environment()
    machine = SimMachine(env, DTN_CLUSTER, with_lustre=False)
    src = Filesystem(env, "gpfs", 1e12, 1e12, metadata_rate=1e5, max_flows=512)
    dst = Filesystem(env, "lustre", 1e12, 1e12, metadata_rate=1e5, max_flows=512)
    return env, machine, src, dst


def test_parallel_transfer_moves_everything():
    env, machine, src, dst = setup_machine()
    files = uniform_files(200, 10 * 1024**2, prefix="/gpfs/proj/data")
    src.add_files(files)
    report = run_dtn_transfer(machine, src, dst, files, n_nodes=4, streams_per_node=8)
    assert dst.file_count == 200
    assert report.total_bytes == sum(f.size for f in files)
    assert report.duration > 0


def test_shards_balanced_across_nodes():
    env, machine, src, dst = setup_machine()
    files = uniform_files(160, 1024, prefix="/gpfs/p")
    src.add_files(files)
    report = run_dtn_transfer(machine, src, dst, files, n_nodes=8, streams_per_node=4)
    assert len(report.per_node_bytes) == 8
    assert max(report.per_node_bytes) == min(report.per_node_bytes)


def test_parallel_beats_sequential_heavily_on_many_small_files():
    files = lognormal_tree(600, mean_size=4 * 1024**2, seed=2)
    cost = RsyncCostModel(startup_s=0.3, per_file_s=0.025, stream_bw=150e6)

    env, machine, src, dst = setup_machine()
    src.add_files(files)
    seq = run_sequential_transfer(machine, src, dst, files, cost=cost)

    env2, machine2, src2, dst2 = setup_machine()
    src2.add_files(files)
    par = run_dtn_transfer(
        machine2, src2, dst2, files, n_nodes=8, streams_per_node=32, cost=cost
    )
    # The win grows with file count (the 200x paper number is at petabyte
    # scale); at this test's size an order of magnitude is the bar.
    assert par.duration < seq.duration / 8
    assert dst2.file_count == 600


def test_restart_after_partial_transfer_skips_done_files():
    env, machine, src, dst = setup_machine()
    files = uniform_files(50, 1024**2, prefix="/gpfs/q")
    src.add_files(files)
    dst.add_files(files[:30])  # a previous run moved 30 already
    report = run_dtn_transfer(machine, src, dst, files, n_nodes=2, streams_per_node=4)
    transferred = sum(s.files_transferred for s in report.rsync_stats)
    skipped = sum(s.files_skipped for s in report.rsync_stats)
    assert transferred == 20 and skipped == 30


def test_validation():
    env, machine, src, dst = setup_machine()
    with pytest.raises(ReproError):
        run_dtn_transfer(machine, src, dst, [], n_nodes=0)


def test_throughput_metrics():
    env, machine, src, dst = setup_machine()
    files = uniform_files(64, 10 * 1024**2, prefix="/gpfs/r")
    src.add_files(files)
    report = run_dtn_transfer(machine, src, dst, files, n_nodes=4, streams_per_node=8)
    assert report.aggregate_mbit_s > 0
    assert report.per_node_mbit_s == pytest.approx(report.aggregate_mbit_s / 4)
