"""RNG registry and trace monitor."""

import numpy as np

from repro.sim import Monitor, RngRegistry


# ------------------------------------------------------------- RngRegistry
def test_same_name_same_stream_sequence():
    a = RngRegistry(seed=1).stream("nodes")
    b = RngRegistry(seed=1).stream("nodes")
    assert np.array_equal(a.random(10), b.random(10))


def test_different_names_independent():
    reg = RngRegistry(seed=1)
    a = reg.stream("alpha").random(10)
    b = reg.stream("beta").random(10)
    assert not np.array_equal(a, b)


def test_creation_order_does_not_matter():
    r1 = RngRegistry(seed=3)
    r1.stream("x")
    seq_y_after = r1.stream("y").random(5)
    r2 = RngRegistry(seed=3)
    seq_y_first = r2.stream("y").random(5)
    assert np.array_equal(seq_y_after, seq_y_first)


def test_stream_cached_not_recreated():
    reg = RngRegistry(seed=0)
    s = reg.stream("s")
    s.random(3)
    assert reg.stream("s") is s
    assert "s" in reg and "t" not in reg


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("n").random(5)
    b = RngRegistry(seed=2).stream("n").random(5)
    assert not np.array_equal(a, b)


# ----------------------------------------------------------------- Monitor
def test_monitor_record_and_read():
    m = Monitor()
    m.record("lat", 1.0, 10.0, tag="a")
    m.record("lat", 2.0, 20.0)
    assert m.count("lat") == 2
    assert list(m.values("lat")) == [10.0, 20.0]
    assert list(m.times("lat")) == [1.0, 2.0]
    assert list(m.names()) == ["lat"]


def test_monitor_missing_series_empty():
    m = Monitor()
    assert m.values("nope").shape == (0,)
    assert m.count("nope") == 0


def test_monitor_merge():
    a, b = Monitor(), Monitor()
    a.record("x", 0, 1)
    b.record("x", 1, 2)
    b.record("y", 0, 3)
    a.merge(b)
    assert m_counts(a) == {"x": 2, "y": 1}


def m_counts(m):
    return {name: m.count(name) for name in m.names()}
