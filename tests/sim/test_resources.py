"""Unit tests for Resource, Store, and FairShareLink."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, FairShareLink, Resource, Store


# ---------------------------------------------------------------- Resource
def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, 0)


def test_resource_grants_up_to_capacity_immediately():
    env = Environment()
    res = Resource(env, 2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.count == 2
    assert res.queue_length == 1


def test_resource_release_grants_fifo():
    env = Environment()
    res = Resource(env, 1)
    r1 = res.request()
    r2 = res.request()
    r3 = res.request()
    assert r1.triggered and not r2.triggered and not r3.triggered
    res.release(r1)
    assert r2.triggered and not r3.triggered
    res.release(r2)
    assert r3.triggered


def test_resource_release_waiting_request_cancels_it():
    env = Environment()
    res = Resource(env, 1)
    r1 = res.request()
    r2 = res.request()
    res.release(r2)  # cancel from queue
    assert res.queue_length == 0
    res.release(r1)
    assert res.count == 0


def test_resource_double_release_is_error():
    env = Environment()
    res = Resource(env, 1)
    r = res.request()
    res.release(r)
    with pytest.raises(SimulationError):
        res.release(r)


def test_resource_serializes_processes():
    env = Environment()
    res = Resource(env, 1)
    spans = []

    def worker(name, hold):
        req = res.request()
        yield req
        start = env.now
        yield env.timeout(hold)
        res.release(req)
        spans.append((name, start, env.now))

    env.process(worker("a", 3))
    env.process(worker("b", 2))
    env.run()
    assert spans == [("a", 0.0, 3.0), ("b", 3.0, 5.0)]


def test_resource_parallelism_matches_capacity():
    env = Environment()
    res = Resource(env, 3)
    finish = []

    def worker(i):
        req = res.request()
        yield req
        yield env.timeout(10)
        res.release(req)
        finish.append((i, env.now))

    for i in range(6):
        env.process(worker(i))
    env.run()
    # two waves of 3
    assert [t for _, t in finish] == [10.0] * 3 + [20.0] * 3


# ------------------------------------------------------------------- Store
def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for item in "xyz":
            yield store.put(item)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == ["x", "y", "z"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(5)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(5.0, "late")]


def test_store_bounded_put_blocks():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        yield store.put(1)
        log.append(("put1", env.now))
        yield store.put(2)
        log.append(("put2", env.now))

    def consumer():
        yield env.timeout(10)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [("put1", 0.0), ("put2", 10.0)]


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


def test_store_items_snapshot_and_len():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    assert len(store) == 2
    assert store.items == ["a", "b"]


# ----------------------------------------------------------- FairShareLink
def test_link_single_flow_full_rate():
    env = Environment()
    link = FairShareLink(env, rate=100.0)
    done = []

    def proc():
        yield link.transfer(1000.0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [pytest.approx(10.0)]


def test_link_two_equal_flows_share_evenly():
    env = Environment()
    link = FairShareLink(env, rate=100.0)
    done = []

    def proc(name):
        yield link.transfer(1000.0)
        done.append((name, env.now))

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    # Both flows share 100 units/s -> each sees 50 -> 20 s.
    assert done[0][1] == pytest.approx(20.0)
    assert done[1][1] == pytest.approx(20.0)


def test_link_staggered_arrival_processor_sharing():
    env = Environment()
    link = FairShareLink(env, rate=100.0)
    done = {}

    def first():
        yield link.transfer(1000.0)
        done["first"] = env.now

    def second():
        yield env.timeout(5)
        yield link.transfer(250.0)
        done["second"] = env.now

    env.process(first())
    env.process(second())
    env.run()
    # first: 5 s alone (500 done), then shares -> 50/s.
    # second needs 250 at 50/s = 5 s -> finishes at 10.
    # first then has 250 left at 100/s -> finishes at 12.5.
    assert done["second"] == pytest.approx(10.0)
    assert done["first"] == pytest.approx(12.5)


def test_link_weighted_flows():
    env = Environment()
    link = FairShareLink(env, rate=90.0)
    done = {}

    def proc(name, size, weight):
        yield link.transfer(size, weight=weight)
        done[name] = env.now

    env.process(proc("heavy", 600.0, 2.0))
    env.process(proc("light", 300.0, 1.0))
    env.run()
    # heavy gets 60/s, light 30/s -> both finish at t=10.
    assert done["heavy"] == pytest.approx(10.0)
    assert done["light"] == pytest.approx(10.0)


def test_link_max_flows_queues_excess():
    env = Environment()
    link = FairShareLink(env, rate=100.0, max_flows=1)
    done = []

    def proc(name):
        yield link.transfer(100.0)
        done.append((name, env.now))

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    assert done == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]


def test_link_zero_size_completes_immediately():
    env = Environment()
    link = FairShareLink(env, rate=10.0)
    done = []

    def proc():
        yield link.transfer(0.0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0.0]


def test_link_total_transferred_counter():
    env = Environment()
    link = FairShareLink(env, rate=10.0)

    def proc():
        yield link.transfer(30.0)
        yield link.transfer(70.0)

    env.process(proc())
    env.run()
    assert link.total_transferred == pytest.approx(100.0)


def test_link_rejects_bad_args():
    env = Environment()
    with pytest.raises(SimulationError):
        FairShareLink(env, rate=0)
    link = FairShareLink(env, rate=1.0)
    with pytest.raises(SimulationError):
        link.transfer(-5)
    with pytest.raises(SimulationError):
        link.transfer(5, weight=0)


def test_link_many_flows_conservation():
    env = Environment()
    link = FairShareLink(env, rate=50.0)
    done = []

    def proc(size, delay):
        yield env.timeout(delay)
        yield link.transfer(size)
        done.append(env.now)

    sizes = [100.0, 200.0, 50.0, 400.0, 250.0]
    for i, s in enumerate(sizes):
        env.process(proc(s, delay=i * 0.5))
    env.run()
    # Work conservation: total work / rate == makespan (link never idles
    # once the first flow arrives, since arrivals overlap).
    assert max(done) == pytest.approx(sum(sizes) / 50.0, rel=1e-6)
    assert link.total_transferred == pytest.approx(sum(sizes))
