"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import InterruptError, SimulationError
from repro.sim import Environment, all_of, any_of


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_initial_time():
    env = Environment(initial_time=100.0)
    assert env.now == 100.0


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(5)
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [5.0]


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_value_passthrough():
    env = Environment()
    got = []

    def proc():
        v = yield env.timeout(1, value="payload")
        got.append(v)

    env.process(proc())
    env.run()
    assert got == ["payload"]


def test_processes_interleave_in_time_order():
    env = Environment()
    order = []

    def proc(name, delay):
        yield env.timeout(delay)
        order.append((name, env.now))

    env.process(proc("b", 2))
    env.process(proc("a", 1))
    env.process(proc("c", 3))
    env.run()
    assert order == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_simultaneous_events_fifo_deterministic():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1)
        order.append(name)

    for name in "abcde":
        env.process(proc(name))
    env.run()
    assert order == list("abcde")


def test_process_return_value_via_run_until():
    env = Environment()

    def proc():
        yield env.timeout(3)
        return 42

    p = env.process(proc())
    assert env.run(until=p) == 42
    assert env.now == 3.0


def test_wait_on_other_process():
    env = Environment()
    log = []

    def child():
        yield env.timeout(2)
        return "child-done"

    def parent():
        result = yield env.process(child())
        log.append((env.now, result))

    env.process(parent())
    env.run()
    assert log == [(2.0, "child-done")]


def test_wait_on_already_finished_process():
    env = Environment()
    log = []

    def child():
        yield env.timeout(1)
        return "v"

    def parent(p):
        yield env.timeout(5)
        result = yield p  # already processed
        log.append((env.now, result))

    p = env.process(child())
    env.process(parent(p))
    env.run()
    assert log == [(5.0, "v")]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10)

    env.process(proc())
    env.run(until=25)
    assert env.now == 25.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=50)
    with pytest.raises(SimulationError):
        env.run(until=10)


def test_event_succeed_once_only():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")


def test_failed_event_raises_in_waiter():
    env = Environment()
    caught = []

    def trigger(ev):
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    def waiter(ev):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    ev = env.event()
    env.process(trigger(ev))
    env.process(waiter(ev))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_propagates_from_run():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(proc())
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_exception_in_awaited_child_reraised_in_parent():
    env = Environment()
    caught = []

    def child():
        yield env.timeout(1)
        raise KeyError("k")

    def parent():
        try:
            yield env.process(child())
        except KeyError:
            caught.append(env.now)

    env.process(parent())
    env.run()
    assert caught == [1.0]


def test_interrupt_raises_interrupt_error_with_cause():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100)
        except InterruptError as exc:
            log.append((env.now, exc.cause))

    def interrupter(p):
        yield env.timeout(3)
        p.interrupt(cause="preempted")

    p = env.process(victim())
    env.process(interrupter(p))
    env.run()
    assert log == [(3.0, "preempted")]


def test_interrupt_finished_process_is_error():
    env = Environment()

    def victim():
        yield env.timeout(1)

    def interrupter(p):
        yield env.timeout(5)
        with pytest.raises(SimulationError):
            p.interrupt()

    p = env.process(victim())
    env.process(interrupter(p))
    env.run()


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100)
        except InterruptError:
            pass
        yield env.timeout(5)
        log.append(env.now)

    def interrupter(p):
        yield env.timeout(10)
        p.interrupt()

    p = env.process(victim())
    env.process(interrupter(p))
    env.run()
    assert log == [15.0]


def test_all_of_waits_for_every_event():
    env = Environment()
    done = []

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")
        results = yield all_of(env, [t1, t2])
        done.append((env.now, sorted(results.values())))

    env.process(proc())
    env.run()
    assert done == [(5.0, ["a", "b"])]


def test_any_of_fires_on_first():
    env = Environment()
    done = []

    def proc():
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        results = yield any_of(env, [t1, t2])
        done.append((env.now, list(results.values())))

    env.process(proc())
    env.run()
    assert done == [(1.0, ["fast"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = []

    def proc():
        yield all_of(env, [])
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0.0]


def test_condition_failure_propagates():
    env = Environment()
    caught = []

    def failer(ev):
        yield env.timeout(2)
        ev.fail(OSError("disk"))

    def waiter(ev):
        try:
            yield all_of(env, [env.timeout(10), ev])
        except OSError:
            caught.append(env.now)

    ev = env.event()
    env.process(failer(ev))
    env.process(waiter(ev))
    env.run()
    assert caught == [2.0]


def test_yield_non_event_fails_process():
    env = Environment()

    def proc():
        yield 42  # type: ignore[misc]

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_run_until_event_exhausted_schedule_is_error():
    env = Environment()
    ev = env.event()  # never triggered
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_peek_and_step():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7.0
    env.step()
    assert env.now == 7.0
    assert env.peek() == float("inf")
    with pytest.raises(SimulationError):
        env.step()


def test_nested_process_chain_return_values():
    env = Environment()

    def leaf():
        yield env.timeout(1)
        return 1

    def mid():
        v = yield env.process(leaf())
        yield env.timeout(1)
        return v + 1

    def root():
        v = yield env.process(mid())
        return v + 1

    p = env.process(root())
    assert env.run(until=p) == 3
    assert env.now == 2.0
