"""Kernel edge cases: interrupts during resource waits, queued stores,
conditions over processed events."""

import pytest

from repro.errors import InterruptError, SimulationError
from repro.sim import Environment, Resource, Store, all_of, any_of


def test_interrupt_while_waiting_on_resource():
    env = Environment()
    res = Resource(env, 1)
    log = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(100)
        res.release(req)

    def waiter():
        req = res.request()
        try:
            yield req
        except InterruptError:
            log.append(("interrupted", env.now))
            res.release(req)  # cancel the queued request
            return
        log.append(("acquired", env.now))

    def interrupter(p):
        yield env.timeout(5)
        p.interrupt()

    env.process(holder())
    w = env.process(waiter())
    env.process(interrupter(w))
    env.run(until=50)
    assert log == [("interrupted", 5.0)]
    assert res.queue_length == 0


def test_condition_over_already_processed_events():
    env = Environment()
    done = []

    def proc():
        t1 = env.timeout(1, value="a")
        yield env.timeout(5)  # t1 long since processed
        results = yield all_of(env, [t1, env.timeout(1, value="b")])
        done.append(sorted(results.values()))

    env.process(proc())
    env.run()
    assert done == [["a", "b"]]


def test_any_of_with_immediate_event():
    env = Environment()
    done = []

    def proc():
        ev = env.event()
        ev.succeed("now")
        results = yield any_of(env, [ev, env.timeout(100)])
        done.append((env.now, list(results.values())))

    env.process(proc())
    env.run()
    assert done == [(0.0, ["now"])]


def test_store_get_cancelled_by_interrupt():
    env = Environment()
    store = Store(env)
    log = []

    def consumer():
        try:
            yield store.get()
        except InterruptError:
            log.append("interrupted")

    def interrupter(p):
        yield env.timeout(2)
        p.interrupt()

    c = env.process(consumer())
    env.process(interrupter(c))
    env.run()
    assert log == ["interrupted"]


def test_event_value_before_trigger_is_error():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_process_cannot_interrupt_itself():
    env = Environment()
    caught = []

    def proc():
        me = env.active_process
        try:
            me.interrupt()
        except SimulationError:
            caught.append(True)
        yield env.timeout(1)

    env.process(proc())
    env.run()
    assert caught == [True]


def test_nested_conditions():
    env = Environment()
    done = []

    def proc():
        inner = all_of(env, [env.timeout(1), env.timeout(2)])
        outer = yield any_of(env, [inner, env.timeout(10)])
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [2.0]


def test_environment_run_without_events_returns():
    env = Environment()
    assert env.run() is None
    assert env.now == 0.0
