"""GPU device pool and the {%} -> device mapping."""

import pytest

from repro.errors import ReproError
from repro.gpu import (
    GpuBusyError,
    GpuPool,
    parse_visible_devices,
    slot_to_device,
)


def test_pool_size():
    assert len(GpuPool(8)) == 8
    assert len(GpuPool(0)) == 0
    with pytest.raises(ReproError):
        GpuPool(-1)


def test_claim_release_cycle():
    pool = GpuPool(2)
    d = pool.device(0)
    d.claim("job1")
    assert d.busy and pool.busy_count == 1
    d.release("job1")
    assert not d.busy and d.tasks_completed == 1


def test_double_claim_raises():
    d = GpuPool(1).device(0)
    d.claim("job1")
    with pytest.raises(GpuBusyError):
        d.claim("job2")


def test_release_by_wrong_owner_raises():
    d = GpuPool(1).device(0)
    d.claim("job1")
    with pytest.raises(GpuBusyError):
        d.release("job2")


def test_device_index_out_of_range():
    with pytest.raises(ReproError):
        GpuPool(2).device(5)


def test_slot_to_device_is_slot_minus_one():
    # HIP_VISIBLE_DEVICES=$(({%} - 1)) with -j8 on an 8-GPU node.
    assert [slot_to_device(s, 8) for s in range(1, 9)] == list(range(8))


def test_slot_to_device_rejects_oversubscription():
    with pytest.raises(ReproError):
        slot_to_device(9, 8)  # -j9 on an 8-GPU node would double-book


def test_slot_to_device_rejects_bad_slot():
    with pytest.raises(ReproError):
        slot_to_device(0, 8)


def test_parse_visible_devices():
    assert parse_visible_devices("3") == [3]
    assert parse_visible_devices("0,1,2") == [0, 1, 2]
    assert parse_visible_devices("") == []
    with pytest.raises(ReproError):
        parse_visible_devices("a,b")
