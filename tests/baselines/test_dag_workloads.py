"""WfBench-style DAG generators and their behaviour in the WMS baseline."""

import networkx as nx
import pytest

from repro.baselines import chain, diamond_stack, fork_join, run_workflow_system
from repro.baselines.workflow_system import WmsCostModel
from repro.errors import ReproError
from repro.sim import Environment

COST = WmsCostModel(dispatch_s=0.001, scan_s_per_task=0.0)


def test_chain_shape():
    g = chain(5)
    assert g.number_of_nodes() == 5
    assert nx.is_directed_acyclic_graph(g)
    assert nx.dag_longest_path_length(g) == 4


def test_chain_single():
    assert chain(1).number_of_edges() == 0


def test_fork_join_shape():
    g = fork_join(8)
    assert g.number_of_nodes() == 10  # split + 8 + merge
    assert g.out_degree(0) == 8
    assert g.in_degree(9) == 8
    assert nx.dag_longest_path_length(g) == 2


def test_diamond_stack_shape():
    g = diamond_stack(levels=3, width=4)
    assert nx.is_directed_acyclic_graph(g)
    # head + 3 * (width + tail)
    assert g.number_of_nodes() == 1 + 3 * 5
    assert nx.dag_longest_path_length(g) == 6


@pytest.mark.parametrize("factory", [lambda: chain(0), lambda: fork_join(0),
                                     lambda: diamond_stack(0, 1),
                                     lambda: diamond_stack(1, 0)])
def test_validation(factory):
    with pytest.raises(ReproError):
        factory()


def test_wms_runs_chain_serially():
    env = Environment()
    res = run_workflow_system(env, chain(4), COST, task_duration=0.5)
    # 4 dependent tasks of 0.5 s: >= 2 s regardless of engine speed.
    assert res.makespan >= 2.0
    assert res.n_tasks == 4


def test_wms_fork_join_dependencies_honoured():
    env = Environment()
    res = run_workflow_system(env, fork_join(5), COST, task_duration=0.1)
    launches = list(res.launch_times)
    # split launches first, merge launches last.
    assert launches[0] == min(launches)
    assert launches[-1] == max(launches)
    assert res.n_tasks == 7


def test_wms_diamond_stack_completes_all():
    env = Environment()
    res = run_workflow_system(env, diamond_stack(2, 3), COST)
    assert res.n_tasks == 1 + 2 * 4
