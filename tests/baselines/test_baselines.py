"""srun-loop, workflow-system, and ease-of-use baselines."""

import numpy as np
import pytest

from repro.baselines import (
    LISTING_4_SRUN_SCRIPT,
    LISTING_5_PARALLEL_SCRIPT,
    WFBENCH_POINTS,
    analytic_overhead,
    bag_of_tasks,
    fit_scan_cost,
    listing4_task_set,
    listing5_task_set,
    run_srun_loop,
    run_workflow_system,
    script_complexity,
)
from repro.baselines.workflow_system import WmsCostModel
from repro.errors import ReproError
from repro.sim import Environment
from repro.slurm import SrunCostModel

import networkx as nx


# ---------------------------------------------------------------- srun loop
def test_srun_loop_launch_rate_capped_by_sleep():
    env = Environment()
    res = run_srun_loop(env, np.zeros(20))
    # `sleep 0.2` caps launches at 5/s.
    assert res.launch_rate <= 5.0 + 0.1


def test_srun_loop_makespan_dominated_by_sleep():
    env = Environment()
    res = run_srun_loop(env, np.zeros(36))  # Listing 4's 36 tasks
    assert res.makespan >= 36 * 0.2


def test_srun_loop_tasks_overlap_in_background():
    env = Environment()
    # 2 s tasks launched 0.2 s apart: total far below serial 20*2 s.
    res = run_srun_loop(env, np.full(20, 2.0))
    assert res.makespan < 10.0
    assert res.n_tasks == 20


def test_srun_loop_counts():
    env = Environment()
    res = run_srun_loop(env, np.zeros(7))
    assert len(res.launch_times) == 7 and len(res.end_times) == 7


# ----------------------------------------------------------------- WMS model
def test_fit_scan_cost_reproduces_calibration_point():
    cost = fit_scan_cost()
    n, overhead = WFBENCH_POINTS[0]
    assert analytic_overhead(n, cost) == pytest.approx(overhead, rel=1e-6)


def test_fit_rejects_impossible_calibration():
    with pytest.raises(ReproError):
        fit_scan_cost(n_tasks=1000, total_overhead_s=1.0, dispatch_s=0.01)


def test_wms_overhead_superlinear():
    cost = fit_scan_cost()
    o1 = analytic_overhead(10_000, cost)
    o2 = analytic_overhead(20_000, cost)
    assert o2 > 2.5 * o1  # quadratic-ish growth


def test_wms_sim_matches_analytic_for_bag():
    cost = WmsCostModel(dispatch_s=0.001, scan_s_per_task=1e-5)
    env = Environment()
    res = run_workflow_system(env, bag_of_tasks(500), cost)
    # Sim scan uses max(outstanding,1): analytic sum_{k=1..n} k plus n
    # dispatches; allow small constant drift.
    assert res.makespan == pytest.approx(analytic_overhead(500, cost), rel=0.02)


def test_wms_respects_dependencies():
    g = nx.DiGraph([(0, 1), (1, 2)])
    cost = WmsCostModel(dispatch_s=0.01, scan_s_per_task=0.0)
    env = Environment()
    res = run_workflow_system(env, g, cost, task_duration=1.0)
    # Chain of 3 one-second tasks must serialize.
    assert res.makespan >= 3.0
    assert list(res.launch_times) == sorted(res.launch_times)


def test_wms_rejects_cycles():
    g = nx.DiGraph([(0, 1), (1, 0)])
    env = Environment()
    with pytest.raises(ReproError):
        run_workflow_system(env, g, WmsCostModel())


# ----------------------------------------------------------------- ease of use
def test_listing5_is_90_percent_smaller():
    c4 = script_complexity(LISTING_4_SRUN_SCRIPT)
    c5 = script_complexity(LISTING_5_PARALLEL_SCRIPT)
    assert c5.reduction_vs(c4) >= 0.85  # paper: "over 90%"
    assert c5.control_keywords == 0
    assert c4.control_keywords >= 5


def test_listings_describe_same_task_set():
    assert listing4_task_set() == listing5_task_set()
    assert len(listing5_task_set()) == 36  # 12 months x 3 apps


def test_script_complexity_ignores_comments_and_blanks():
    c = script_complexity("# comment\n\n  \necho hi\n")
    assert c.lines == 1
