"""Property-based tests for the replacement-string engine."""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.template import CommandTemplate

# Literal text that cannot form a replacement token or confuse the lexer.
literal_text = st.text(
    alphabet=st.characters(blacklist_characters="{}", blacklist_categories=("Cs",)),
    min_size=0,
    max_size=30,
)

# Argument values: printable, no surrogates.
arg_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    min_size=0,
    max_size=40,
)


@given(literal_text)
def test_literal_templates_pass_through_unchanged(text):
    """A template with no tokens renders as itself + the appended input."""
    t = CommandTemplate(text if text.strip() else text + "cmd")
    out = t.render(("ARG",))
    assert out.endswith("ARG")
    assert out[: -len(" ARG")] == (text if text.strip() else text + "cmd")


@given(arg_values)
def test_brace_substitution_is_exact(value):
    out = CommandTemplate("x {} y").render((value,))
    assert out == f"x {value} y"


@given(arg_values)
def test_path_ops_consistent_with_os_path(value):
    t = CommandTemplate("{/}|{//}|{.}|{/.}")
    base = os.path.basename(value)
    # GNU Parallel renders {//} of a bare filename as ".", where
    # os.path.dirname gives "" (see tests/conformance/test_rendering.py).
    dirname = os.path.dirname(value) or "."
    root, _ = os.path.splitext(value)
    broot, _ = os.path.splitext(base)
    assert t.render((value,)) == f"{base}|{dirname}|{root}|{broot}"


@given(st.integers(min_value=1, max_value=10**9), st.integers(min_value=1, max_value=4096))
def test_seq_and_slot_render_as_decimal(seq, slot):
    out = CommandTemplate("{#}:{%}").render(("x",), seq=seq, slot=slot)
    assert out == f"{seq}:{slot}"


@given(st.lists(arg_values, min_size=1, max_size=5))
def test_positional_tokens_extract_each_source(args):
    tmpl = " ".join(f"{{{i + 1}}}" for i in range(len(args)))
    out = CommandTemplate(tmpl).render(tuple(args))
    assert out == " ".join(args)


@given(literal_text, arg_values)
@settings(max_examples=50)
def test_render_is_deterministic(text, value):
    t = CommandTemplate(text + " {}")
    assert t.render((value,)) == t.render((value,))


@given(st.lists(arg_values, min_size=1, max_size=3))
def test_argv_mode_quoting_roundtrips(args):
    """Argv-mode render_argv never merges or splits arguments."""
    t = CommandTemplate(["prog", *["{%d}" % (i + 1) for i in range(len(args))]])
    argv = t.render_argv(tuple(args))
    assert argv == ["prog", *args]
