"""Property-based tests for the Listing-1 driver sharding."""

from hypothesis import given
from hypothesis import strategies as st

from repro.driver import shard_block, shard_cyclic, shard_sizes


@given(st.lists(st.integers(), max_size=300), st.integers(min_value=1, max_value=20))
def test_cyclic_shards_partition_the_input(items, nnodes):
    shards = [list(shard_cyclic(items, nnodes, i)) for i in range(nnodes)]
    flat = [x for s in shards for x in s]
    assert sorted(flat) == sorted(items)
    assert sum(len(s) for s in shards) == len(items)


@given(st.lists(st.integers(), max_size=300), st.integers(min_value=1, max_value=20))
def test_cyclic_shards_balanced_within_one(items, nnodes):
    sizes = [len(list(shard_cyclic(items, nnodes, i))) for i in range(nnodes)]
    assert max(sizes) - min(sizes) <= 1


@given(st.lists(st.integers(), max_size=300), st.integers(min_value=1, max_value=20))
def test_block_shards_partition_and_preserve_order(items, nnodes):
    shards = [shard_block(items, nnodes, i) for i in range(nnodes)]
    flat = [x for s in shards for x in s]
    assert flat == items  # block sharding preserves global order
    sizes = [len(s) for s in shards]
    assert max(sizes) - min(sizes) <= 1


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=50))
def test_shard_sizes_agree_with_actual_shards(n_items, nnodes):
    items = list(range(n_items))
    expected = shard_sizes(n_items, nnodes)
    actual = [len(list(shard_cyclic(items, nnodes, i))) for i in range(nnodes)]
    assert expected == actual


@given(st.lists(st.integers(), min_size=1, max_size=100),
       st.integers(min_value=1, max_value=10))
def test_cyclic_each_node_preserves_relative_order(items, nnodes):
    for i in range(nnodes):
        shard = list(shard_cyclic(items, nnodes, i))
        positions = [items.index(x) for x in shard] if len(set(items)) == len(items) else None
        if positions is not None:
            assert positions == sorted(positions)
