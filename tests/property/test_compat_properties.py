"""Property-based tests for brace expansion and pipe-mode splitting."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compat import brace_expand
from repro.core.pipemode import split_blocks, split_records

plain_word = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126,
                           blacklist_characters="{},"),
    max_size=12,
)


@given(plain_word)
def test_braceless_words_expand_to_themselves(word):
    assert brace_expand(word) == [word]


@given(st.integers(min_value=-50, max_value=50), st.integers(min_value=-50, max_value=50))
def test_numeric_sequence_matches_range(lo, hi):
    got = brace_expand(f"{{{lo}..{hi}}}")
    step = 1 if lo <= hi else -1
    assert got == [str(v) for v in range(lo, hi + step, step)]


@given(st.lists(plain_word, min_size=2, max_size=5))
def test_comma_list_matches_parts(parts):
    got = brace_expand("{" + ",".join(parts) + "}")
    assert got == parts


@given(st.lists(plain_word.filter(bool), min_size=2, max_size=3),
       st.lists(plain_word.filter(bool), min_size=2, max_size=3))
def test_two_groups_cartesian_product(a, b):
    got = brace_expand("{" + ",".join(a) + "}{" + ",".join(b) + "}")
    expected = [x + y for x, y in itertools.product(a, b)]
    assert got == expected


@given(plain_word, st.integers(min_value=1, max_value=9),
       st.integers(min_value=1, max_value=9))
def test_prefix_suffix_distribute(prefix, lo_n, count):
    hi = lo_n + count - 1
    got = brace_expand(f"{prefix}{{{lo_n}..{hi}}}.x")
    assert got == [f"{prefix}{v}.x" for v in range(lo_n, hi + 1)]


# ------------------------------------------------------------ pipe splitting
lines_strategy = st.lists(
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=30),
    max_size=40,
)


@given(lines_strategy, st.integers(min_value=1, max_value=10))
@settings(max_examples=80)
def test_split_records_concatenation_identity(lines, n):
    text = "\n".join(lines)
    blocks = list(split_records(text, n))
    expected = "".join(ln + "\n" for ln in text.splitlines())
    assert "".join(blocks) == expected


@given(lines_strategy, st.integers(min_value=1, max_value=200))
@settings(max_examples=80)
def test_split_blocks_concatenation_identity(lines, block_bytes):
    text = "\n".join(lines)
    blocks = list(split_blocks(text, block_bytes))
    expected = "".join(ln + "\n" for ln in text.splitlines())
    assert "".join(blocks) == expected


@given(lines_strategy, st.integers(min_value=1, max_value=10))
def test_split_records_block_sizes(lines, n):
    text = "\n".join(lines)
    blocks = list(split_records(text, n))
    for b in blocks[:-1]:
        assert b.count("\n") == n
    if blocks:
        assert 1 <= blocks[-1].count("\n") <= n
