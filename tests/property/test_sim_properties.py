"""Property-based tests for simulation-kernel invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, FairShareLink, RateStation, Resource
from repro.simengine import batch_completion_times

durations = st.lists(
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False), min_size=0, max_size=60
)


@given(
    st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20),
    st.floats(min_value=0.5, max_value=1000.0),
)
@settings(max_examples=60, deadline=None)
def test_fair_share_link_conserves_work(sizes, rate):
    """Makespan of simultaneous flows == total work / rate (work conservation)."""
    env = Environment()
    link = FairShareLink(env, rate=rate)
    done = []

    def proc(size):
        yield link.transfer(size)
        done.append(env.now)

    for s in sizes:
        env.process(proc(s))
    env.run()
    assert len(done) == len(sizes)
    assert max(done) <= sum(sizes) / rate * (1 + 1e-9) + 1e-6
    assert max(done) >= max(sizes) / rate * (1 - 1e-9) - 1e-6
    np.testing.assert_allclose(link.total_transferred, sum(sizes), rtol=1e-9)


@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_resource_never_oversubscribed(capacity, hold_times):
    env = Environment()
    res = Resource(env, capacity)
    peak = [0]

    def worker(hold):
        req = res.request()
        yield req
        peak[0] = max(peak[0], res.count)
        yield env.timeout(hold)
        res.release(req)

    for h in hold_times:
        env.process(worker(h))
    env.run()
    assert peak[0] <= capacity
    assert res.count == 0  # everything released


@given(st.integers(min_value=1, max_value=50), st.floats(min_value=1.0, max_value=1000.0))
@settings(max_examples=60, deadline=None)
def test_rate_station_throughput_exact(n, rate):
    """n serialized services at `rate` ops/s finish at exactly n/rate."""
    env = Environment()
    station = RateStation(env, rate)
    last = []

    def proc():
        yield station.serve()
        last.append(env.now)

    for _ in range(n):
        env.process(proc())
    env.run()
    assert len(last) == n
    np.testing.assert_allclose(max(last), n / rate, rtol=1e-9)


@given(durations, st.integers(min_value=1, max_value=300))
@settings(max_examples=80, deadline=None)
def test_batch_model_invariants(durs, jobs):
    arr = np.array(durs)
    times = batch_completion_times(arr, jobs=jobs)
    assert times.shape == arr.shape
    if arr.size:
        # Every task finishes after its own duration + one dispatch + fork.
        assert (times >= arr + 1.0 / 470.0).all()
        # Dispatcher serialization lower-bounds the last completion.
        assert times.max() >= arr.size / 470.0 - 1e-9
        # Adding a slot can never slow the batch down.
        more = batch_completion_times(arr, jobs=jobs + 1)
        assert more.max() <= times.max() + 1e-9
