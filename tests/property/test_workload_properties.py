"""Property-based tests for workload substrates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.celeritas import TransportConfig, transport
from repro.workloads.darshan import DarshanRecord
from repro.workloads.fetchprocess import brightness_metric
from repro.workloads.forge import clean_text, is_english

safe_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=300
)


@given(safe_text)
@settings(max_examples=100)
def test_clean_text_idempotent(text):
    once = clean_text(text)
    assert clean_text(once) == once


@given(safe_text)
def test_clean_text_strips_control_chars(text):
    cleaned = clean_text(text)
    assert not any(ord(c) < 32 and c != "\n" for c in cleaned)


@given(safe_text)
def test_is_english_total_function(text):
    assert is_english(text) in (True, False)


@given(
    st.integers(min_value=0, max_value=10**7),
    st.text(alphabet="abcdefghijklmnop_", min_size=1, max_size=12),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=4096),
    st.sampled_from(["POSIX", "MPIIO", "STDIO", "LUSTRE"]),
    st.integers(min_value=0, max_value=2**60),
    st.integers(min_value=0, max_value=2**60),
    st.integers(min_value=0, max_value=10**6),
)
def test_darshan_record_line_roundtrip(job, app, month, nprocs, module, br, bw, fo):
    rec = DarshanRecord(job, app, month, nprocs, module, br, bw, fo, 12.25)
    assert DarshanRecord.from_line(rec.to_line()) == rec


@given(
    st.integers(min_value=100, max_value=5000),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_transport_conserves_particles_and_energy(n_photons, seed):
    result = transport(TransportConfig(n_photons=n_photons, seed=seed, max_steps=50))
    assert result.balance_ok
    assert result.total_deposited >= 0.0
    # Full energy ledger: deposited + escaped + killed == source energy.
    assert result.energy_balance_ok(n_photons * 1.0, rtol=1e-6)


@given(
    st.integers(min_value=2, max_value=32),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_brightness_metric_bounded(size, fill):
    img = np.full((size, size), fill)
    v = brightness_metric(img)
    assert 0.0 <= v <= 100.0
