"""Property-based tests for engine-level invariants (callable backend)."""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Options, Parallel
from repro.core.job import JobResult, JobState
from repro.core.options import HaltSpec
from repro.core.output import OutputSequencer

items_strategy = st.lists(
    st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1, max_size=10),
    min_size=0,
    max_size=25,
)


@given(items_strategy, st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_map_preserves_input_order_and_values(items, jobs):
    result = Parallel(lambda x: x + "!", jobs=jobs).map(items)
    assert result == [x + "!" for x in items]


@given(items_strategy, st.integers(min_value=1, max_value=6))
@settings(max_examples=25, deadline=None)
def test_every_input_dispatched_exactly_once(items, jobs):
    seen = []
    lock = threading.Lock()

    def record(x):
        with lock:
            seen.append(x)

    summary = Parallel(record, jobs=jobs).run(items)
    assert summary.n_dispatched == len(items)
    assert sorted(seen) == sorted(items)
    assert {r.seq for r in summary.results} == set(range(1, len(items) + 1))


@given(st.permutations(list(range(1, 13))))
def test_output_sequencer_emits_in_order_for_any_completion_order(order):
    emitted = []
    seq = OutputSequencer(lambda r, t: emitted.append(r.seq), Options(keep_order=True))
    for s in order:
        seq.push(
            JobResult(seq=s, args=(str(s),), command="c", exit_code=0,
                      start_time=0, end_time=1, slot=1, state=JobState.SUCCEEDED)
        )
    assert emitted == sorted(order)
    assert seq.pending == 0


halt_counts = st.integers(min_value=1, max_value=99)


@given(
    st.sampled_from(["now", "soon"]),
    st.sampled_from(["fail", "success", "done"]),
    halt_counts,
)
def test_halt_spec_parse_roundtrip(when, what, n):
    spec = HaltSpec.parse(f"{when},{what}={n}")
    assert spec.when == when and spec.what == what
    assert spec.threshold == float(n) and not spec.percent


@given(st.sampled_from(["fail", "success", "done"]), st.integers(min_value=1, max_value=100))
def test_halt_spec_percent_roundtrip(what, pct):
    spec = HaltSpec.parse(f"soon,{what}={pct}%")
    assert spec.percent and spec.threshold == pct / 100.0
