"""Property-based tests for persistence layers (joblog, results tree)."""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import JobResult, JobState
from repro.core.joblog import JoblogWriter, read_joblog
from repro.core.results import result_dir_for

command_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=1, max_size=60
)
arg_text = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=20
)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=10**6),  # seq
            st.integers(min_value=0, max_value=255),  # exit code
            command_text,
        ),
        min_size=0,
        max_size=20,
        unique_by=lambda t: t[0],
    )
)
@settings(max_examples=60)
def test_joblog_roundtrip_preserves_every_entry(tmp_path_factory, entries):
    tmp = tmp_path_factory.mktemp("joblog")
    path = str(tmp / "log")
    with JoblogWriter(path) as w:
        for seq, code, cmd in entries:
            w.write(
                JobResult(
                    seq=seq, args=("x",), command=cmd, exit_code=code,
                    start_time=1.0, end_time=2.0, slot=1, host="h",
                    state=JobState.SUCCEEDED if code == 0 else JobState.FAILED,
                )
            )
    parsed = read_joblog(path)
    assert len(parsed) == len(entries)
    for (seq, code, cmd), entry in zip(entries, parsed):
        assert entry.seq == seq
        assert entry.exitval == code
        # Tabs/newlines sanitized to spaces; everything else preserved.
        assert entry.command == cmd.replace("\t", " ").replace("\n", " ")


@given(st.lists(arg_text, min_size=1, max_size=4))
def test_result_dir_paths_are_safe_and_unique_per_args(args):
    root = "/root/results"
    path = result_dir_for(root, tuple(args))
    assert path.startswith(root + os.sep)
    rel = os.path.relpath(path, root)
    # No path traversal and exactly two components per input source.
    assert ".." not in rel.split(os.sep)
    assert len(rel.split(os.sep)) == 2 * len(args)


@given(arg_text, arg_text)
def test_result_dirs_distinct_for_distinct_single_args(a, b):
    if a != b and a.replace("/", "_") != b.replace("/", "_"):
        assert result_dir_for("/r", (a,)) != result_dir_for("/r", (b,))
