"""Property tests for the fault-injection subsystem.

The two invariants the chaos layer promises:

* **Convergence** — any seeded plan whose faults are transient
  (``times < retries``) lets every job eventually succeed;
* **Replay** — a completed joblog replays to an identical skip-set, so a
  ``--resume`` after any fault history re-runs nothing (and two scans of
  the same log always agree).
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Parallel
from repro.core.backends.callable_backend import CallableBackend
from repro.core.joblog import completed_seqs, scan_joblog
from repro.faults import FaultPlan, FaultSpec, FaultyBackend

transient_kinds = st.sampled_from(["flaky", "crash", "signal"])


@st.composite
def transient_plans(draw):
    """A seeded plan of transient faults plus a sufficient retry budget."""
    times = draw(st.integers(min_value=1, max_value=3))
    prob = draw(st.floats(min_value=0.05, max_value=0.6))
    kind = draw(transient_kinds)
    seed = draw(st.integers(min_value=0, max_value=2**31))
    plan = FaultPlan(seed=seed,
                     random_faults=[(prob, FaultSpec(kind, times=times))])
    return plan, times + 1  # retries strictly greater than failing attempts


@given(transient_plans(), st.integers(min_value=1, max_value=30),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=25, deadline=None)
def test_transient_faults_always_converge(plan_and_retries, n_jobs, jobs):
    plan, retries = plan_and_retries
    backend = FaultyBackend(CallableBackend(lambda x: x), plan)
    summary = Parallel(lambda x: x, jobs=jobs, retries=retries,
                       backend=backend).run(list(range(n_jobs)))
    assert summary.ok
    assert summary.n_succeeded == n_jobs
    assert summary.n_failed == 0
    # Each job's final attempt is within the budget and consistent with
    # the plan: faulted jobs used times+1 attempts, clean jobs exactly 1.
    for r in summary.sorted_results():
        spec = plan.spec_for(r.seq)
        expected = 1 if spec is None else int(spec.attempts_affected) + 1
        assert r.attempt == expected


@given(transient_plans(), st.integers(min_value=1, max_value=20),
       st.integers(min_value=0, max_value=2**31))
@settings(max_examples=15, deadline=None)
def test_joblog_replays_to_identical_skip_set_under_resume(
    plan_and_retries, n_jobs, run_seed
):
    plan, retries = plan_and_retries
    fd, path = tempfile.mkstemp(prefix="joblog-prop-")
    os.close(fd)
    try:
        backend = FaultyBackend(CallableBackend(lambda x: x), plan)
        summary = Parallel(lambda x: x, jobs=4, retries=retries, seed=run_seed,
                           joblog=path, backend=backend).run(list(range(n_jobs)))
        assert summary.ok

        # Replay: two scans of the same log agree exactly, and the
        # skip-set covers every seq (all converged to success).
        first = completed_seqs(path, include_failed=True)
        assert completed_seqs(path, include_failed=True) == first
        assert first == set(range(1, n_jobs + 1))
        assert scan_joblog(path).ok

        # --resume re-runs nothing: the fault history is irrelevant once
        # every seq has a successful record.
        resumed = Parallel(lambda x: x, jobs=4, retries=retries,
                           joblog=path, resume=True,
                           backend=FaultyBackend(
                               CallableBackend(lambda x: x), plan)).run(
            list(range(n_jobs))
        )
        assert resumed.n_dispatched == 0
        assert resumed.n_skipped == n_jobs
    finally:
        os.unlink(path)


@given(st.integers(min_value=0, max_value=2**31),
       st.lists(st.tuples(st.floats(min_value=0.0, max_value=1.0),
                          transient_kinds),
                min_size=1, max_size=4))
@settings(max_examples=50, deadline=None)
def test_fault_selection_is_a_pure_function_of_seed(seed, rules):
    build = lambda: FaultPlan(
        seed=seed, random_faults=[(p, FaultSpec(k)) for p, k in rules]
    )
    a, b = build(), build()
    for seq in range(1, 200):
        sa, sb = a.spec_for(seq), b.spec_for(seq)
        assert (sa is None) == (sb is None)
        if sa is not None:
            assert sa == sb


@given(st.integers(min_value=0, max_value=2**31),
       st.integers(min_value=1, max_value=6),
       st.integers(min_value=2, max_value=50))
@settings(max_examples=30, deadline=None)
def test_retry_backoff_is_monotonic_and_capped(seed, attempt, base_x100):
    import random

    from repro.core.policies import retry_backoff_delay

    base = base_x100 / 100.0
    cap = 4 * base
    raw_prev = retry_backoff_delay(attempt, base, cap)
    raw_next = retry_backoff_delay(attempt + 1, base, cap)
    assert raw_prev <= raw_next <= cap  # doubling, saturating at the cap
    jittered = retry_backoff_delay(attempt, base, cap, random.Random(seed))
    assert raw_prev / 2 <= jittered <= raw_prev  # jitter window [raw/2, raw]
    assert retry_backoff_delay(attempt, 0.0, cap) == 0.0
