"""Property tests for remote placement invariants.

The four promises the multi-host layer makes, checked over randomized
rosters, workloads and fault schedules:

* **Slot discipline** — per-host concurrency never exceeds the host's
  slot count, for any roster shape and job count;
* **Placement totality** — every job executes on exactly one host, and
  that host was not banned at dispatch time;
* **Requeue-not-drop** — banning a host mid-run loses no jobs: every seq
  still completes (on a surviving host), with no duplicate joblog entry;
* **Local parity** — a remote run's joblog seq/exit accounting is
  identical to the local backend running the same workload.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Parallel
from repro.core.joblog import read_joblog
from repro.core.template import CommandTemplate
from repro.faults import FaultyTransport
from repro.obs import RunTracer
from repro.remote import HostSpec, RemoteBackend, SimTransport

rosters = st.lists(
    st.integers(min_value=1, max_value=4), min_size=1, max_size=5
).map(lambda slots: [HostSpec(f"h{i}", s) for i, s in enumerate(slots)])


class EventSink:
    """Collects tracer events; the engine renews user-supplied backends per
    run, so tracer events are the stable way to observe placement health."""

    def __init__(self):
        self.events = []

    def handle(self, event):
        self.events.append(event)

    def close(self):
        pass

    def named(self, name):
        return [e for e in self.events if e.name == name]


class CountingTransport(SimTransport):
    """SimTransport that tracks live and peak per-host concurrency."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self._track = threading.Lock()
        self.live = {}
        self.peak = {}

    def execute(self, host, command, **kw):
        with self._track:
            self.live[host.name] = self.live.get(host.name, 0) + 1
            self.peak[host.name] = max(
                self.peak.get(host.name, 0), self.live[host.name]
            )
        try:
            # A tiny real sleep forces genuine overlap between workers so
            # the peak counter actually observes concurrency.
            threading.Event().wait(0.002)
            return super().execute(host, command, **kw)
        finally:
            with self._track:
                self.live[host.name] -= 1


def run_remote(hosts, n_jobs, transport=None, **optkw):
    transport = transport if transport is not None else SimTransport()
    backend = RemoteBackend(hosts, transport,
                            template=CommandTemplate("job {}"))
    sink = EventSink()
    sshlogin = [",".join(f"{h.slots}/{h.name}" for h in hosts)]
    summary = Parallel(
        "job {}", backend=backend, sshlogin=sshlogin,
        tracer=RunTracer(sinks=[sink]), **optkw,
    ).run([str(i) for i in range(n_jobs)])
    return summary, transport, sink


@given(rosters, st.integers(min_value=1, max_value=40))
@settings(max_examples=15, deadline=None)
def test_per_host_concurrency_never_exceeds_slots(hosts, n_jobs):
    transport = CountingTransport()
    summary, _, _ = run_remote(hosts, n_jobs, transport=transport)
    assert summary.ok
    slots = {h.name: h.slots for h in hosts}
    for name, peak in transport.peak.items():
        assert peak <= slots[name]


@given(rosters, st.integers(min_value=1, max_value=40))
@settings(max_examples=15, deadline=None)
def test_every_job_executes_on_exactly_one_live_host(hosts, n_jobs):
    summary, transport, sink = run_remote(hosts, n_jobs)
    assert summary.ok
    names = {h.name for h in hosts}
    execs_by_seq = {}
    for host, _cmd, seq in transport.exec_log:
        execs_by_seq.setdefault(seq, []).append(host)
    # Exactly one execution per seq, on a roster host never banned.
    assert set(execs_by_seq) == set(range(1, n_jobs + 1))
    assert all(len(v) == 1 for v in execs_by_seq.values())
    assert all(v[0] in names for v in execs_by_seq.values())
    assert sink.named("host_banned") == []
    # The result's recorded host is the host that actually executed.
    for r in summary.results:
        assert [r.host] == execs_by_seq[r.seq]


@given(
    st.integers(min_value=2, max_value=5),   # roster size
    st.integers(min_value=8, max_value=30),  # jobs
    st.integers(min_value=0, max_value=6),   # victim dies after k executes
)
@settings(max_examples=15, deadline=None)
def test_banning_requeues_inflight_jobs_never_drops(n_hosts, n_jobs, k):
    ban_after = 2
    hosts = [HostSpec(f"h{i}", 2) for i in range(n_hosts)]
    transport = FaultyTransport(SimTransport(), host_down_after={"h0": k})
    summary, _, sink = run_remote(
        hosts, n_jobs, transport=transport, ban_after=ban_after
    )
    # Every seq completed successfully despite the mid-run host death.
    assert summary.ok
    assert summary.n_succeeded == n_jobs
    assert {r.seq for r in summary.results} == set(range(1, n_jobs + 1))
    # The dead host finished at most its pre-death budget; everything its
    # death displaced landed on survivors.
    assert transport.completed_on("h0") <= k
    assert sum(1 for r in summary.results if r.host == "h0") <= k
    # Post-death failures are consecutive, so the host is banned as soon
    # as it eats ban_after of them — and never leased again afterwards.
    errors_h0 = [e for e in sink.named("transport_error")
                 if e.data.get("host") == "h0"]
    assert len(errors_h0) <= ban_after
    if len(errors_h0) >= ban_after:
        assert any(e.data.get("host") == "h0"
                   for e in sink.named("host_banned"))


@given(
    n_hosts=st.integers(min_value=1, max_value=4),
    slots=st.integers(min_value=1, max_value=3),
    n_jobs=st.integers(min_value=1, max_value=25),
)
@settings(max_examples=10, deadline=None)
def test_joblog_parity_with_local_backend(tmp_path_factory, n_hosts, slots, n_jobs):
    inputs = [str(i) for i in range(n_jobs)]
    root = tmp_path_factory.mktemp("parity")
    # Exit code derived from the input: args divisible by 3 fail (exit 1).
    cmd = 'test $(( {} % 3 )) -ne 0'
    local_log = str(root / "local.tsv")
    remote_log = str(root / "remote.tsv")

    Parallel(cmd, jobs=4, joblog=local_log).run(inputs)

    hosts = [HostSpec(f"h{i}", slots) for i in range(n_hosts)]
    backend = RemoteBackend(
        hosts,
        SimTransport(handler=lambda h, c: _exit_for(c)),
        template=CommandTemplate(cmd),
    )
    Parallel(
        cmd, backend=backend, joblog=remote_log,
        sshlogin=[",".join(f"{h.slots}/{h.name}" for h in hosts)],
    ).run(inputs)

    local = {e.seq: e.exitval for e in read_joblog(local_log)}
    remote = {e.seq: e.exitval for e in read_joblog(remote_log)}
    assert remote == local
    assert set(local) == set(range(1, n_jobs + 1))


def _exit_for(command):
    """Evaluate the parity workload's `test $(( N % 3 )) -ne 0` command."""
    n = int(command.split("((")[1].split("%")[0].strip())
    return (0, "") if n % 3 else (1, "")
