"""Replacement-string rendering conformance (``--dry-run`` output).

Each case is one canned invocation.  The hardcoded expectation encodes
GNU Parallel's documented rendering semantics (``man parallel``,
REPLACEMENT STRINGS) and always runs; the differential half re-runs the
identical invocation through a real ``parallel`` binary when one is on
PATH and requires byte-identical command lines.
"""

import pytest

from tests.conformance.conftest import requires_gnu_parallel

# (case id, argv after the program name, expected dry-run lines)
# -j1 everywhere: dry-run emission order is input order on both sides.
RENDER_CASES = [
    ("implicit-append", ["echo"], ["a", "b"], ["echo a", "echo b"]),
    ("explicit-braces", ["echo", "{}", "x"], ["a"], ["echo a x"]),
    ("repeated-braces", ["echo", "{}", "{}"], ["a"], ["echo a a"]),
    ("strip-extension", ["echo", "{.}"], ["dir/file.txt"], ["echo dir/file"]),
    ("strip-last-extension-only", ["echo", "{.}"], ["a.b.c.txt"],
     ["echo a.b.c"]),
    ("no-extension-unchanged", ["echo", "{.}"], ["plain"], ["echo plain"]),
    ("basename", ["echo", "{/}"], ["dir/sub/file.txt"], ["echo file.txt"]),
    ("dirname", ["echo", "{//}"], ["dir/sub/file.txt"], ["echo dir/sub"]),
    ("dirname-of-bare-file", ["echo", "{//}"], ["file.txt"], ["echo ."]),
    ("basename-no-extension", ["echo", "{/.}"], ["dir/file.tar"],
     ["echo file"]),
    ("seq-number", ["echo", "{#}", "{}"], ["a", "b", "c"],
     ["echo 1 a", "echo 2 b", "echo 3 c"]),
    ("slot-number-j1", ["echo", "{%}", "{}"], ["a", "b"],
     ["echo 1 a", "echo 1 b"]),
]

# Cases whose input is two ::: sources (crossed, GNU default).
CROSS_CASES = [
    ("positional-cross", ["echo", "{1}-{2}"], ["a", "b"], ["1", "2"],
     ["echo a-1", "echo a-2", "echo b-1", "echo b-2"]),
    ("positional-swapped", ["echo", "{2}", "{1}"], ["a", "b"], ["1", "2"],
     ["echo 1 a", "echo 2 a", "echo 1 b", "echo 2 b"]),
    ("positional-with-op", ["echo", "{1/}", "{2}"], ["d/x.c", "d/y.c"],
     ["1", "2"],
     ["echo x.c 1", "echo x.c 2", "echo y.c 1", "echo y.c 2"]),
]

LINK_CASES = [
    ("linked-sources", ["echo", "{1}", "{2}"], ["a", "b"], ["1", "2"],
     ["echo a 1", "echo b 2"]),
]


def dry_run_args(command, sources):
    args = ["-j1", "--dry-run", *command]
    for source in sources:
        args.append(":::")
        args.extend(source)
    return args


def case_args(case_table):
    """Flatten a case table into (id, argv, expected) triples."""
    flat = []
    for case in case_table:
        name, command, *sources, expected = case
        flat.append((name, dry_run_args(command, list(sources)), expected))
    return flat


ALL_CASES = case_args(RENDER_CASES) + case_args(CROSS_CASES) + [
    (name, ["-j1", "--dry-run", "--link", *command,
            ":::", *src1, ":::", *src2], expected)
    for name, command, src1, src2, expected in LINK_CASES
]


@pytest.mark.parametrize(
    "argv,expected", [c[1:] for c in ALL_CASES], ids=[c[0] for c in ALL_CASES]
)
def test_dry_run_rendering(pyparallel, argv, expected):
    proc = pyparallel(argv)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.splitlines() == expected


@requires_gnu_parallel
@pytest.mark.parametrize(
    "argv,expected", [c[1:] for c in ALL_CASES], ids=[c[0] for c in ALL_CASES]
)
def test_dry_run_rendering_matches_gnu_parallel(
    pyparallel, gnu_parallel, argv, expected
):
    ours = pyparallel(argv)
    theirs = gnu_parallel(argv)
    assert ours.returncode == theirs.returncode == 0
    assert ours.stdout.splitlines() == theirs.stdout.splitlines()


def test_linked_plus_separator(pyparallel):
    """``:::+`` links the second source to the first (no cross product)."""
    proc = pyparallel(["-j1", "--dry-run", "echo", "{1}", "{2}",
                       ":::", "a", "b", ":::+", "1", "2"])
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.splitlines() == ["echo a 1", "echo b 2"]


def test_max_args_packing(pyparallel):
    """``-n2`` packs two arguments per job into {1} and {2}."""
    proc = pyparallel(["-j1", "--dry-run", "-n2", "echo", "{1}+{2}",
                       ":::", "a", "b", "c", "d"])
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.splitlines() == ["echo a+b", "echo c+d"]


@requires_gnu_parallel
def test_max_args_packing_matches_gnu_parallel(pyparallel, gnu_parallel):
    argv = ["-j1", "--dry-run", "-n2", "echo", "{1}+{2}",
            ":::", "a", "b", "c", "d"]
    ours, theirs = pyparallel(argv), gnu_parallel(argv)
    assert ours.stdout.splitlines() == theirs.stdout.splitlines()
