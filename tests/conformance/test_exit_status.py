"""Exit-status aggregation conformance.

GNU Parallel's exit code is the number of failed jobs, saturating at
101 ("more than 100 jobs failed"); 0 means every job succeeded.
"""

from tests.conformance.conftest import requires_gnu_parallel


def test_all_success_exits_zero(pyparallel):
    proc = pyparallel(["-j4", "true", ":::", "a", "b", "c"])
    assert proc.returncode == 0, proc.stderr


def test_exit_code_counts_failed_jobs(pyparallel):
    proc = pyparallel(["-j4", "sh -c 'test {} -lt 3'",
                       ":::", "1", "2", "3", "4", "5"])
    assert proc.returncode == 3


def test_exit_code_saturates_at_101(pyparallel):
    inputs = [str(n) for n in range(110)]
    proc = pyparallel(["-j8", "false", ":::", *inputs], timeout=120)
    assert proc.returncode == 101


def test_command_not_found_counts_as_failure(pyparallel):
    proc = pyparallel(["-j2", "definitely-not-a-command-xyz",
                       ":::", "a", "b"])
    assert proc.returncode == 2


@requires_gnu_parallel
def test_exit_codes_match_gnu_parallel(pyparallel, gnu_parallel):
    for argv in (
        ["-j4", "true", ":::", "a", "b"],
        ["-j4", "sh -c 'test {} -lt 3'", ":::", "1", "2", "3", "4"],
        ["-j2", "false", ":::", "a", "b", "c"],
    ):
        ours, theirs = pyparallel(argv), gnu_parallel(argv)
        assert ours.returncode == theirs.returncode, argv
