"""``--keep-order`` conformance: output order is input order, always."""

from tests.conformance.conftest import requires_gnu_parallel

#: Sleeps chosen so completion order is the reverse of input order —
#: keep-order must still emit input order.
REVERSING = ["-k", "-j4", "sh -c 'sleep {}; echo {}'",
             ":::", "0.3", "0.2", "0.1", "0"]
EXPECTED = ["0.3", "0.2", "0.1", "0"]


def test_keep_order_beats_completion_order(pyparallel):
    proc = pyparallel(REVERSING)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.splitlines() == EXPECTED


def test_keep_order_with_failures_keeps_order(pyparallel):
    proc = pyparallel([
        "-k", "-j4",
        "sh -c 'sleep {}; echo {}; test {} != 0.2'",
        ":::", "0.3", "0.2", "0.1", "0",
    ])
    assert proc.returncode == 1  # exactly one job failed
    assert proc.stdout.splitlines() == EXPECTED


def test_keep_order_from_stdin(pyparallel):
    proc = pyparallel(["-k", "-j4", "sh -c 'sleep {}; echo {}'"],
                      stdin="0.2\n0.1\n0\n")
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.splitlines() == ["0.2", "0.1", "0"]


@requires_gnu_parallel
def test_keep_order_matches_gnu_parallel(pyparallel, gnu_parallel):
    ours, theirs = pyparallel(REVERSING), gnu_parallel(REVERSING)
    assert ours.stdout == theirs.stdout
    assert ours.returncode == theirs.returncode == 0
