"""Remote-flag conformance (``-S`` / ``--sshloginfile`` parsing + rendering).

``--dry-run`` never contacts a host — on both implementations it prints
the rendered command lines and exits — so the remote flags can be
conformance-tested without ssh: the roster must parse, the per-host slot
arithmetic must cap ``-j`` correctly, and rendering must stay identical
to a local invocation.  Hardcoded expectations always run; when a real
``parallel`` binary is on PATH the same invocations are replayed through
it and compared.
"""

import pytest

from tests.conformance.conftest import (
    requires_gnu_parallel,
    run_gnu_parallel,
    run_pyparallel,
)

# (case id, argv, expected dry-run lines) — single host + -j1 keeps the
# emission order deterministic on both sides.
DRY_RUN_CASES = [
    ("sshlogin-renders-like-local",
     ["-j1", "--dry-run", "-S", "1/n1", "echo", "{}", ":::", "a", "b"],
     ["echo a", "echo b"]),
    ("sshlogin-comma-roster",
     ["-j1", "--dry-run", "-S", "1/n1,1/n2", "echo", "{}", ":::", "a"],
     ["echo a"]),
    ("sshlogin-repeated-flag",
     ["-j1", "--dry-run", "-S", "1/n1", "-S", "1/n2",
      "echo", "{}", ":::", "a"],
     ["echo a"]),
    ("sshlogin-colon-is-localhost",
     ["-j1", "--dry-run", "-S", ":", "echo", "{}", ":::", "x"],
     ["echo x"]),
    ("sshlogin-with-ops",
     ["-j1", "--dry-run", "-S", "1/n1", "echo", "{/.}", ":::", "d/f.txt"],
     ["echo f"]),
    ("sshlogin-seq-token",
     ["-j1", "--dry-run", "-S", "1/n1", "echo", "{#}", "{}",
      ":::", "a", "b"],
     ["echo 1 a", "echo 2 b"]),
    ("sshlogin-slot-token-single-host",
     ["-j1", "--dry-run", "-S", "1/n1", "echo", "{%}", ":::", "a", "b"],
     ["echo 1", "echo 1"]),
]


@pytest.mark.parametrize(
    "argv,expected",
    [c[1:] for c in DRY_RUN_CASES],
    ids=[c[0] for c in DRY_RUN_CASES],
)
def test_dry_run_rendering_with_roster(argv, expected):
    proc = run_pyparallel(argv)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.splitlines() == expected


@requires_gnu_parallel
@pytest.mark.parametrize(
    "argv,expected",
    [c[1:] for c in DRY_RUN_CASES],
    ids=[c[0] for c in DRY_RUN_CASES],
)
def test_dry_run_rendering_matches_gnu(argv, expected):
    ours = run_pyparallel(argv)
    gnu = run_gnu_parallel(argv)
    assert ours.returncode == gnu.returncode == 0
    assert ours.stdout.splitlines() == gnu.stdout.splitlines() == expected


class TestSshloginfile:
    def write_roster(self, tmp_path, text):
        path = tmp_path / "roster.txt"
        path.write_text(text)
        return str(path)

    def test_file_roster_renders_like_local(self, tmp_path):
        slf = self.write_roster(tmp_path, "1/n1\n# standby rack\n\n1/n2\n")
        proc = run_pyparallel(
            ["-j1", "--dry-run", "--sshloginfile", slf,
             "echo", "{}", ":::", "a"],
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.splitlines() == ["echo a"]

    def test_slf_alias(self, tmp_path):
        slf = self.write_roster(tmp_path, ":\n")
        proc = run_pyparallel(
            ["-j1", "--dry-run", "--slf", slf, "echo", "{}", ":::", "a"],
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.splitlines() == ["echo a"]

    def test_empty_roster_file_is_an_error(self, tmp_path):
        slf = self.write_roster(tmp_path, "# only comments\n\n")
        proc = run_pyparallel(
            ["--dry-run", "--sshloginfile", slf, "echo", ":::", "a"],
        )
        assert proc.returncode != 0
        assert proc.stdout == ""

    @requires_gnu_parallel
    def test_file_roster_matches_gnu(self, tmp_path):
        slf = self.write_roster(tmp_path, "1/n1\n1/n2\n")
        argv = ["-j1", "--dry-run", "--sshloginfile", slf,
                "echo", "{}", ":::", "a", "b"]
        ours = run_pyparallel(argv)
        gnu = run_gnu_parallel(argv)
        assert ours.returncode == gnu.returncode == 0
        assert sorted(ours.stdout.splitlines()) == sorted(
            gnu.stdout.splitlines()
        )


class TestRosterParsingErrors:
    """Parse failures must be diagnosed up front, before any job starts.

    These assert our CLI contract only (exit 255 + a message naming the
    offending spec); GNU Parallel's handling of degenerate rosters is
    version-dependent, so no differential half.
    """

    @pytest.mark.parametrize("spec", ["0/n1", "x/n1", "/n1", "2/"])
    def test_malformed_sshlogin_rejected(self, spec):
        proc = run_pyparallel(["--dry-run", "-S", spec, "echo", ":::", "a"])
        assert proc.returncode == 255
        assert proc.stdout == ""
        assert "error" in proc.stderr

    def test_missing_roster_file_rejected(self, tmp_path):
        proc = run_pyparallel(
            ["--dry-run", "--sshloginfile", str(tmp_path / "absent"),
             "echo", ":::", "a"],
        )
        assert proc.returncode == 255
        assert "sshloginfile" in proc.stderr

    def test_staging_flags_require_roster(self):
        proc = run_pyparallel(
            ["--dry-run", "--transferfile", "{}", "echo", ":::", "a"],
        )
        assert proc.returncode == 255
        assert "transfer" in proc.stderr.lower() or "-S" in proc.stderr


class TestPerHostJobSemantics:
    """Under ``-S``, ``-j`` caps jobs *per host*; totals are summed."""

    def test_host_token_stays_literal_in_dry_run(self):
        # Dry-run never places a job on a host, so {host} has no binding
        # and survives verbatim.  It is not a GNU replacement string, so
        # the input is still implicitly appended.
        proc = run_pyparallel(
            ["-j1", "--dry-run", "-S", "1/n1", "echo", "{host}",
             ":::", "a"],
        )
        assert proc.returncode == 0
        assert proc.stdout.splitlines() == ["echo {host} a"]

    def test_real_run_executes_on_roster(self):
        # No --dry-run: the run goes through RemoteBackend's
        # LocalTransport twin and must still produce plain stdout.
        proc = run_pyparallel(
            ["-j2", "-k", "-S", "2/n1,2/n2", "echo", "{}",
             ":::", "a", "b", "c", "d"],
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.splitlines() == ["a", "b", "c", "d"]

    def test_real_run_host_token_binds(self):
        proc = run_pyparallel(
            ["-j1", "-S", "1/solo", "echo", "{host}", ":::", "a"],
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "solo a"
