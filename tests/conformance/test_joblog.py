"""``--joblog`` conformance: GNU Parallel's column layout and semantics."""

from tests.conformance.conftest import requires_gnu_parallel

GNU_COLUMNS = [
    "Seq", "Host", "Starttime", "JobRuntime", "Send", "Receive",
    "Exitval", "Signal", "Command",
]


def read_log(path):
    lines = open(path).read().splitlines()
    header, rows = lines[0].split("\t"), [l.split("\t") for l in lines[1:]]
    return header, rows


def test_joblog_columns_and_one_line_per_job(pyparallel, tmp_path):
    log = str(tmp_path / "joblog.tsv")
    proc = pyparallel(["-j2", "--joblog", log, "true", ":::", "a", "b", "c"])
    assert proc.returncode == 0, proc.stderr
    header, rows = read_log(log)
    assert header == GNU_COLUMNS
    assert len(rows) == 3
    assert sorted(r[0] for r in rows) == ["1", "2", "3"]  # Seq column
    assert all(r[6] == "0" for r in rows)  # Exitval
    assert all(float(r[3]) >= 0 for r in rows)  # JobRuntime
    assert all(r[8].startswith("true") for r in rows)  # Command


def test_joblog_records_exit_values(pyparallel, tmp_path):
    log = str(tmp_path / "joblog.tsv")
    proc = pyparallel(["-j2", "--joblog", log,
                       "sh -c 'exit {}'", ":::", "0", "3", "7"])
    assert proc.returncode == 2  # two failed jobs
    _, rows = read_log(log)
    by_seq = sorted((int(r[0]), r[6]) for r in rows)
    assert [v for _, v in by_seq] == ["0", "3", "7"]


def test_joblog_records_one_line_per_retry_attempt(pyparallel, tmp_path):
    log = str(tmp_path / "joblog.tsv")
    proc = pyparallel(["-j1", "--retries", "2", "--joblog", log,
                       "false", ":::", "x"])
    assert proc.returncode == 1
    _, rows = read_log(log)
    assert len(rows) == 2  # both attempts logged
    assert all(r[6] == "1" for r in rows)


@requires_gnu_parallel
def test_joblog_columns_match_gnu_parallel(pyparallel, gnu_parallel, tmp_path):
    ours_log = str(tmp_path / "ours.tsv")
    theirs_log = str(tmp_path / "theirs.tsv")
    argv = ["-j2", "true", ":::", "a", "b"]
    pyparallel(["--joblog", ours_log, *argv])
    gnu_parallel(["--joblog", theirs_log, *argv])
    ours_header, ours_rows = read_log(ours_log)
    theirs_header, theirs_rows = read_log(theirs_log)
    assert ours_header == theirs_header
    assert len(ours_rows) == len(theirs_rows)
    # Same Seq and Exitval columns on both sides.
    assert sorted(r[0] for r in ours_rows) == sorted(r[0] for r in theirs_rows)
    assert [r[6] for r in ours_rows] == [r[6] for r in theirs_rows]
