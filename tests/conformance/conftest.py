"""Fixtures for the GNU Parallel conformance suite.

Every case runs ``pyparallel`` (this repo's CLI) and asserts against a
hardcoded expectation, so the suite is meaningful on any machine.  When
a real ``parallel`` binary is on PATH, the same invocation additionally
runs through GNU Parallel and the two outputs are compared — the
differential half of the contract.
"""

import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

import repro

#: Source tree the subprocess CLI imports from.
SRC_DIR = str(Path(repro.__file__).parents[1])

GNU_PARALLEL = shutil.which("parallel")

requires_gnu_parallel = pytest.mark.skipif(
    GNU_PARALLEL is None, reason="GNU parallel not on PATH"
)


def run_pyparallel(args, stdin=None, timeout=60):
    """Run this repo's CLI as a subprocess; returns CompletedProcess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.core.cli", *args],
        input=stdin, capture_output=True, text=True, timeout=timeout, env=env,
    )


def run_gnu_parallel(args, stdin=None, timeout=60):
    """Run the real GNU Parallel with flags aligned to our defaults."""
    assert GNU_PARALLEL is not None
    return subprocess.run(
        [GNU_PARALLEL, "--will-cite", *args],
        input=stdin, capture_output=True, text=True, timeout=timeout,
    )


#: Every conformance case runs once per spawn path: the posix_spawn fast
#: path ("auto" resolves to it where supported) and the Popen reference
#: path must be behaviourally indistinguishable at the CLI boundary.
SPAWN_PATHS = ("auto", "popen")


@pytest.fixture(params=SPAWN_PATHS)
def pyparallel(request):
    spawn_path = request.param

    def run(args, stdin=None, timeout=60):
        return run_pyparallel(
            ["--spawn-path", spawn_path, *args], stdin=stdin, timeout=timeout
        )

    return run


@pytest.fixture
def gnu_parallel():
    if GNU_PARALLEL is None:
        pytest.skip("GNU parallel not on PATH")
    return run_gnu_parallel
