"""Input-source conformance: stdin arguments and ``::::`` arg files."""

from tests.conformance.conftest import requires_gnu_parallel


def test_stdin_lines_become_arguments(pyparallel):
    proc = pyparallel(["-j1", "echo"], stdin="a\nb\nc\n")
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.splitlines() == ["a", "b", "c"]


def test_arg_file_source(pyparallel, tmp_path):
    arg_file = tmp_path / "args.txt"
    arg_file.write_text("x\ny\n")
    proc = pyparallel(["-j1", "--dry-run", "echo", "{}",
                       "::::", str(arg_file)])
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.splitlines() == ["echo x", "echo y"]


def test_arg_file_crossed_with_literal_source(pyparallel, tmp_path):
    arg_file = tmp_path / "args.txt"
    arg_file.write_text("x\ny\n")
    proc = pyparallel(["-j1", "--dry-run", "echo", "{1}{2}",
                       "::::", str(arg_file), ":::", "1", "2"])
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.splitlines() == ["echo x1", "echo x2",
                                        "echo y1", "echo y2"]


@requires_gnu_parallel
def test_stdin_and_arg_files_match_gnu_parallel(
    pyparallel, gnu_parallel, tmp_path
):
    ours = pyparallel(["-j1", "echo"], stdin="a\nb\n")
    theirs = gnu_parallel(["-j1", "echo"], stdin="a\nb\n")
    assert ours.stdout == theirs.stdout
    arg_file = tmp_path / "args.txt"
    arg_file.write_text("x\ny\n")
    argv = ["-j1", "--dry-run", "echo", "{}", "::::", str(arg_file)]
    assert pyparallel(argv).stdout == gnu_parallel(argv).stdout
