"""Staging parity: cache and overlap must never change job-visible output.

The content-addressed cache and the ``--stage-ahead`` lane are pure
*cost* optimizations — every run here asserts byte-for-byte identical
stdout, identical joblog accounting (seqs, exit codes), and identical
returned files against the synchronous uncached baseline.  The chaos leg
kills a host mid-run (prefetches in flight) and requires the same
guarantee to survive re-placement and cache invalidation.
"""

import os

import pytest

from repro.core.engine import Parallel
from repro.core.joblog import read_joblog
from repro.faults import FaultyTransport
from repro.remote import LocalTransport

# One slot per host: the *uncached* baseline removes a job's staged
# files right after it, so two concurrent jobs on one host would race on
# the shared input (stage/cleanup interleaving) — the exact hazard the
# refcounted cache removes.  Parity must compare against a baseline that
# is itself deterministic, so same-host concurrency stays at 1.
FOUR_HOSTS = "1/n1,1/n2,1/n3,1/n4"
COMMAND = (
    "mkdir -p out && cat in/shared.txt in/{}.txt > out/{}.txt "
    "&& cat out/{}.txt"
)
INPUTS = [f"f{i:02d}" for i in range(10)]


def populate(root):
    (root / "in").mkdir()
    (root / "in" / "shared.txt").write_text("SHARED PAYLOAD\n" * 64)
    for name in INPUTS:
        (root / "in" / f"{name}.txt").write_text(f"payload of {name}\n")


def run_variant(root, *, transport=None, **kw):
    populate(root)
    cwd = os.getcwd()
    os.chdir(root)
    try:
        kw.setdefault("jobs", 2)
        kw.setdefault("sshlogin", [FOUR_HOSTS])
        kw.setdefault("transfer_files", ["in/shared.txt", "in/{}.txt"])
        kw.setdefault("return_files", ["out/{}.txt"])
        kw.setdefault("cleanup", True)
        kw.setdefault("keep_order", True)
        kw.setdefault("joblog", str(root / "joblog.tsv"))
        engine = Parallel(COMMAND, **kw)
        if transport is not None:
            from repro.core.template import CommandTemplate
            from repro.remote import RemoteBackend, parse_sshlogin

            backend = RemoteBackend(
                parse_sshlogin(kw["sshlogin"][0]), transport,
                template=CommandTemplate(COMMAND),
            )
            engine = Parallel(COMMAND, backend=backend, **kw)
        summary = engine.run(INPUTS)
    finally:
        os.chdir(cwd)
    return summary


def observable(root, summary):
    """Everything a user can see from a run: stdout, exits, files, joblog."""
    stdout = {r.seq: r.stdout for r in summary.results}
    exits = {r.seq: r.exit_code for r in summary.results}
    returned = {
        name: (root / "out" / f"{name}.txt").read_bytes() for name in INPUTS
    }
    log = {
        e.seq: e.exitval for e in read_joblog(str(root / "joblog.tsv"))
    }
    return {
        "stdout": stdout, "exits": exits, "returned": returned, "joblog": log,
    }


@pytest.fixture
def baseline(tmp_path):
    root = tmp_path / "baseline"
    root.mkdir()
    summary = run_variant(root, staging_cache=False, stage_ahead=0)
    assert summary.ok
    return observable(root, summary)


class TestParity:
    def test_cached_matches_uncached(self, tmp_path, baseline):
        root = tmp_path / "cached"
        root.mkdir()
        summary = run_variant(root, staging_cache=True, stage_ahead=0)
        assert summary.ok
        assert observable(root, summary) == baseline
        assert summary.staging["files_staged"] > 0
        # With --cleanup and one slot per host every sequential job is
        # the last referencer, so zero hits here is *correct*: eviction
        # between jobs is exactly what deferred refcounted cleanup does.

    def test_cached_without_cleanup_dedups_shared_input(
        self, tmp_path, baseline
    ):
        """Without --cleanup entries persist for the whole run, so the
        shared input is staged at most once per host: 10 jobs over 4
        hosts must see >= 6 hits.  Cleanup only touches remote workdirs,
        which the user-visible observables cannot see — parity holds."""
        root = tmp_path / "nocleanup"
        root.mkdir()
        summary = run_variant(
            root, staging_cache=True, stage_ahead=0, cleanup=False,
        )
        assert summary.ok
        assert observable(root, summary) == baseline
        assert summary.staging["cache_hits"] >= len(INPUTS) - 4
        assert summary.staging["bytes_staged_avoided"] > 0

    @pytest.mark.parametrize("ahead", [2, 6])
    def test_stage_ahead_matches_synchronous(self, tmp_path, baseline, ahead):
        root = tmp_path / f"ahead{ahead}"
        root.mkdir()
        summary = run_variant(root, staging_cache=True, stage_ahead=ahead)
        assert summary.ok
        assert observable(root, summary) == baseline
        assert summary.staging.get("prefetched_jobs", 0) > 0

    def test_uncached_summary_has_no_staging_block(self, tmp_path):
        root = tmp_path / "uncached"
        root.mkdir()
        summary = run_variant(root, staging_cache=False, stage_ahead=0)
        assert summary.ok
        assert summary.staging == {}


class TestChaosLeg:
    def test_host_death_mid_prefetch_reroutes_without_stale_reuse(
        self, tmp_path, baseline
    ):
        """n1 dies after 2 completed commands while the staging lane is
        prefetching ahead: its jobs must re-place, its cache entries must
        be invalidated (no job may trust files on the dead host), and the
        run's user-visible output must still match the baseline."""
        root = tmp_path / "chaos"
        root.mkdir()
        transport = FaultyTransport(LocalTransport(), host_down_after={"n1": 2})
        summary = run_variant(
            root, transport=transport,
            staging_cache=True, stage_ahead=4, ban_after=2,
        )
        assert summary.ok
        assert observable(root, summary) == baseline
        assert transport.injected.get("host_down", 0) > 0

    def test_all_prefetch_hosts_down_still_completes(self, tmp_path, baseline):
        """Prefetch errors are advisory: with every named host dying after
        a couple of commands except one, the run must still finish with
        correct output via the survivor."""
        root = tmp_path / "survivor"
        root.mkdir()
        transport = FaultyTransport(
            LocalTransport(),
            host_down_after={"n1": 1, "n2": 1, "n3": 1},
        )
        summary = run_variant(
            root, transport=transport,
            staging_cache=True, stage_ahead=4, ban_after=1,
        )
        assert summary.ok
        assert observable(root, summary) == baseline


def trace_cats(trace_path):
    import json

    doc = json.loads(trace_path.read_text())
    cats = {
        (e.get("name"), e.get("cat"))
        for e in doc["traceEvents"] if e.get("ph") in ("X", "i")
    }
    return doc, cats


class TestTraceSurface:
    def test_trace_carries_staging_category_and_run_totals(self, tmp_path):
        # cleanup=False keeps cache entries alive across sequential jobs
        # on 1-slot hosts, so cache_hit instants are guaranteed.
        root = tmp_path / "traced"
        root.mkdir()
        trace_path = root / "trace.json"
        summary = run_variant(
            root, staging_cache=True, stage_ahead=0, cleanup=False,
            trace=str(trace_path),
        )
        assert summary.ok
        doc, cats = trace_cats(trace_path)
        assert ("stage_in", "staging") in cats
        assert ("cache_hit", "staging") in cats
        staging = doc["otherData"]["staging"]
        assert staging["cache_hits"] > 0
        assert staging["bytes_staged_avoided"] > 0

    def test_trace_carries_cleanup_spans(self, tmp_path):
        root = tmp_path / "traced-cleanup"
        root.mkdir()
        trace_path = root / "trace.json"
        summary = run_variant(
            root, staging_cache=True, stage_ahead=0, trace=str(trace_path),
        )
        assert summary.ok
        _doc, cats = trace_cats(trace_path)
        assert ("stage_in", "staging") in cats
        assert ("cleanup", "staging") in cats
