"""StagingPolicy: per-job template rendering and transfer phases."""

import pytest

from repro.core.job import Job
from repro.core.options import Options
from repro.errors import StagingError
from repro.remote.hosts import HostSpec
from repro.remote.staging import StagingPolicy
from repro.remote.transport import SimTransport
from repro.storage.transfer import remote_relpath

H1 = HostSpec("h1", 2)
H2 = HostSpec("h2", 2)


def job(seq=1, arg="a"):
    return Job(seq=seq, args=(arg,), attempt=1)


class TestRemoteRelpath:
    @pytest.mark.parametrize("given,expected", [
        ("in/a.txt", "in/a.txt"),
        ("./in/a.txt", "in/a.txt"),
        ("/data/a.txt", "data/a.txt"),
        ("//deep//path//f", "deep/path/f"),
    ])
    def test_rsync_relative_semantics(self, given, expected):
        assert remote_relpath(given) == expected

    @pytest.mark.parametrize("bad", ["../escape", "a/../../b", "", "./"])
    def test_escapes_and_empties_rejected(self, bad):
        with pytest.raises(StagingError):
            remote_relpath(bad)


class TestStagingPolicy:
    def opts(self, **kw):
        kw.setdefault("sshlogin", ["2/h1,2/h2"])
        return Options(jobs=2, **kw)

    def test_from_options_roundtrip(self):
        pol = StagingPolicy.from_options(self.opts(
            transfer_files=["in/{}.txt"], return_files=["out/{}.txt"],
            cleanup=True, basefiles=["model.bin"], workdir="...",
        ))
        assert pol.active and pol.cleanup and pol.workdir == "..."

    def test_inactive_when_nothing_to_stage(self):
        assert not StagingPolicy.from_options(self.opts()).active

    def test_paths_rendered_per_job(self):
        pol = StagingPolicy.from_options(self.opts(
            transfer_files=["/abs/in/{}.dat"], return_files=["out/{#}.txt"],
        ))
        assert pol.transfer_paths(job(seq=3, arg="x"), slot=1) == [
            ("/abs/in/x.dat", "abs/in/x.dat")
        ]
        assert pol.return_paths(job(seq=3, arg="x"), slot=1) == [
            ("out/3.txt", "out/3.txt")
        ]

    def test_literal_path_not_appended_with_input(self):
        # implicit-append must not turn "data.txt" into "data.txt {}".
        pol = StagingPolicy.from_options(self.opts(transfer_files=["data.txt"]))
        assert pol.transfer_paths(job(arg="x"), slot=1) == [("data.txt", "data.txt")]

    def test_stage_in_puts_and_reports_relpaths(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "in").mkdir()
        (tmp_path / "in" / "a.txt").write_text("hello")
        pol = StagingPolicy.from_options(self.opts(transfer_files=["in/{}.txt"]))
        st = SimTransport()
        staged = pol.stage_in(st, H1, job(arg="a"), 1, "w")
        assert staged == ["in/a.txt"]
        assert st.files["h1"]["in/a.txt"] == b"hello"

    def test_stage_out_success_requires_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        pol = StagingPolicy.from_options(self.opts(return_files=["out/{}.txt"]))
        st = SimTransport()
        with pytest.raises(StagingError):
            pol.stage_out(st, H1, job(arg="a"), 1, "w", job_ok=True)

    def test_stage_out_failure_forgives_missing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        pol = StagingPolicy.from_options(self.opts(return_files=["out/{}.txt"]))
        st = SimTransport()
        assert pol.stage_out(st, H1, job(arg="a"), 1, "w", job_ok=False) == []

    def test_stage_out_fetches_what_exists(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        pol = StagingPolicy.from_options(self.opts(return_files=["out/{}.txt"]))
        st = SimTransport()
        st.provide(H1, "out/a.txt", b"done\n")
        fetched = pol.stage_out(st, H1, job(arg="a"), 1, "w", job_ok=True)
        assert fetched == ["out/a.txt"]
        assert (tmp_path / "out" / "a.txt").read_bytes() == b"done\n"

    def test_cleanup_removes_deduped(self):
        pol = StagingPolicy(cleanup=True)
        st = SimTransport()
        st.provide(H1, "a", b"1")
        st.provide(H1, "b", b"2")
        assert pol.cleanup_remote(st, H1, ["a", "b", "a"], "w") == 2

    def test_cleanup_noop_unless_enabled(self):
        pol = StagingPolicy(cleanup=False)
        st = SimTransport()
        st.provide(H1, "a", b"1")
        assert pol.cleanup_remote(st, H1, ["a"], "w") == 0
        assert "a" in st.files["h1"]

    def test_basefiles_staged_once_per_host(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "model.bin").write_bytes(b"weights")
        pol = StagingPolicy.from_options(self.opts(basefiles=["model.bin"]))
        st = SimTransport()
        for _ in range(3):
            pol.stage_basefiles(st, H1, "w")
        pol.stage_basefiles(st, H2, "w")
        # One put per host despite repeated calls: clock charged once each.
        assert st.files["h1"]["model.bin"] == b"weights"
        assert st.files["h2"]["model.bin"] == b"weights"
        one_put = st.elapsed(H1)
        assert st.elapsed(H2) == pytest.approx(one_put)

    def test_basefile_failure_allows_retry(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        pol = StagingPolicy.from_options(self.opts(basefiles=["missing.bin"]))
        st = SimTransport()
        with pytest.raises(StagingError):
            pol.stage_basefiles(st, H1, "w")
        (tmp_path / "missing.bin").write_bytes(b"late")
        pol.stage_basefiles(st, H1, "w")  # the retry succeeds
        assert st.files["h1"]["missing.bin"] == b"late"


class TestOptionsValidation:
    def test_staging_flags_require_remote(self):
        from repro.errors import OptionsError

        with pytest.raises(OptionsError):
            Options(transfer_files=["x"])
        with pytest.raises(OptionsError):
            Options(cleanup=True)
        with pytest.raises(OptionsError):
            Options(return_files=["y"], basefiles=["z"])

    def test_remote_property(self):
        assert Options(sshlogin=["n1"]).remote
        assert Options(sshloginfile="hosts.txt").remote
        assert not Options().remote

    def test_ban_after_validated(self):
        from repro.errors import OptionsError

        with pytest.raises(OptionsError):
            Options(ban_after=0)
