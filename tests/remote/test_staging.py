"""StagingPolicy: per-job template rendering and transfer phases."""

import threading

import pytest

from repro.core.job import Job
from repro.core.options import Options
from repro.errors import StagingError
from repro.remote.hosts import HostSpec
from repro.remote.staging import StagingPolicy
from repro.remote.transport import SimTransport
from repro.storage.transfer import remote_relpath

H1 = HostSpec("h1", 2)
H2 = HostSpec("h2", 2)


def job(seq=1, arg="a"):
    return Job(seq=seq, args=(arg,), attempt=1)


class TestRemoteRelpath:
    @pytest.mark.parametrize("given,expected", [
        ("in/a.txt", "in/a.txt"),
        ("./in/a.txt", "in/a.txt"),
        ("/data/a.txt", "data/a.txt"),
        ("//deep//path//f", "deep/path/f"),
    ])
    def test_rsync_relative_semantics(self, given, expected):
        assert remote_relpath(given) == expected

    @pytest.mark.parametrize("bad", ["../escape", "a/../../b", "", "./"])
    def test_escapes_and_empties_rejected(self, bad):
        with pytest.raises(StagingError):
            remote_relpath(bad)


class TestStagingPolicy:
    def opts(self, **kw):
        kw.setdefault("sshlogin", ["2/h1,2/h2"])
        return Options(jobs=2, **kw)

    def test_from_options_roundtrip(self):
        pol = StagingPolicy.from_options(self.opts(
            transfer_files=["in/{}.txt"], return_files=["out/{}.txt"],
            cleanup=True, basefiles=["model.bin"], workdir="...",
        ))
        assert pol.active and pol.cleanup and pol.workdir == "..."

    def test_inactive_when_nothing_to_stage(self):
        assert not StagingPolicy.from_options(self.opts()).active

    def test_paths_rendered_per_job(self):
        pol = StagingPolicy.from_options(self.opts(
            transfer_files=["/abs/in/{}.dat"], return_files=["out/{#}.txt"],
        ))
        assert pol.transfer_paths(job(seq=3, arg="x"), slot=1) == [
            ("/abs/in/x.dat", "abs/in/x.dat")
        ]
        assert pol.return_paths(job(seq=3, arg="x"), slot=1) == [
            ("out/3.txt", "out/3.txt")
        ]

    def test_literal_path_not_appended_with_input(self):
        # implicit-append must not turn "data.txt" into "data.txt {}".
        pol = StagingPolicy.from_options(self.opts(transfer_files=["data.txt"]))
        assert pol.transfer_paths(job(arg="x"), slot=1) == [("data.txt", "data.txt")]

    def test_stage_in_puts_and_reports_relpaths(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "in").mkdir()
        (tmp_path / "in" / "a.txt").write_text("hello")
        pol = StagingPolicy.from_options(self.opts(transfer_files=["in/{}.txt"]))
        st = SimTransport()
        staged = pol.stage_in(st, H1, job(arg="a"), 1, "w")
        assert staged == ["in/a.txt"]
        assert st.files["h1"]["in/a.txt"] == b"hello"

    def test_stage_out_success_requires_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        pol = StagingPolicy.from_options(self.opts(return_files=["out/{}.txt"]))
        st = SimTransport()
        with pytest.raises(StagingError):
            pol.stage_out(st, H1, job(arg="a"), 1, "w", job_ok=True)

    def test_stage_out_failure_forgives_missing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        pol = StagingPolicy.from_options(self.opts(return_files=["out/{}.txt"]))
        st = SimTransport()
        assert pol.stage_out(st, H1, job(arg="a"), 1, "w", job_ok=False) == []

    def test_stage_out_fetches_what_exists(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        pol = StagingPolicy.from_options(self.opts(return_files=["out/{}.txt"]))
        st = SimTransport()
        st.provide(H1, "out/a.txt", b"done\n")
        fetched = pol.stage_out(st, H1, job(arg="a"), 1, "w", job_ok=True)
        assert fetched == ["out/a.txt"]
        assert (tmp_path / "out" / "a.txt").read_bytes() == b"done\n"

    def test_cleanup_removes_deduped(self):
        pol = StagingPolicy(cleanup=True)
        st = SimTransport()
        st.provide(H1, "a", b"1")
        st.provide(H1, "b", b"2")
        assert pol.cleanup_remote(st, H1, ["a", "b", "a"], "w") == 2

    def test_cleanup_noop_unless_enabled(self):
        pol = StagingPolicy(cleanup=False)
        st = SimTransport()
        st.provide(H1, "a", b"1")
        assert pol.cleanup_remote(st, H1, ["a"], "w") == 0
        assert "a" in st.files["h1"]

    def test_basefiles_staged_once_per_host(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "model.bin").write_bytes(b"weights")
        pol = StagingPolicy.from_options(self.opts(basefiles=["model.bin"]))
        st = SimTransport()
        for _ in range(3):
            pol.stage_basefiles(st, H1, "w")
        pol.stage_basefiles(st, H2, "w")
        # One put per host despite repeated calls: clock charged once each.
        assert st.files["h1"]["model.bin"] == b"weights"
        assert st.files["h2"]["model.bin"] == b"weights"
        one_put = st.elapsed(H1)
        assert st.elapsed(H2) == pytest.approx(one_put)

    def test_basefile_failure_allows_retry(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        pol = StagingPolicy.from_options(self.opts(basefiles=["missing.bin"]))
        st = SimTransport()
        with pytest.raises(StagingError):
            pol.stage_basefiles(st, H1, "w")
        (tmp_path / "missing.bin").write_bytes(b"late")
        pol.stage_basefiles(st, H1, "w")  # the retry succeeds
        assert st.files["h1"]["missing.bin"] == b"late"

    @pytest.mark.parametrize("cached", [True, False])
    def test_basefile_concurrent_waits_for_inflight_push(
        self, tmp_path, monkeypatch, cached
    ):
        """Regression: the old mark-before-push set let a second job skip
        staging and run while the basefile was still in flight.  A
        concurrent call must *block until the push has finished*."""
        monkeypatch.chdir(tmp_path)
        (tmp_path / "model.bin").write_bytes(b"weights")
        pol = StagingPolicy.from_options(self.opts(
            basefiles=["model.bin"], staging_cache=cached,
        ))
        put_started = threading.Event()
        release_put = threading.Event()

        class SlowTransport(SimTransport):
            def put(self, host, src, relpath, workdir):
                put_started.set()
                release_put.wait(5.0)
                return super().put(host, src, relpath, workdir)

        st = SlowTransport()
        first_done = threading.Event()
        second_done = threading.Event()

        def first():
            pol.stage_basefiles(st, H1, "w")
            first_done.set()

        def second():
            pol.stage_basefiles(st, H1, "w")
            second_done.set()

        t1 = threading.Thread(target=first, daemon=True)
        t1.start()
        assert put_started.wait(5.0)
        t2 = threading.Thread(target=second, daemon=True)
        t2.start()
        # The push is still in flight: neither caller may have returned.
        assert not second_done.wait(0.1)
        release_put.set()
        assert first_done.wait(5.0) and second_done.wait(5.0)
        t1.join(5.0)
        t2.join(5.0)
        assert st.files["h1"]["model.bin"] == b"weights"
        # And exactly one physical push happened.
        assert st.elapsed(H1) == pytest.approx(
            st.model.transfer_time(len(b"weights"))
        )

    def test_basefile_dedups_against_transferfile(self, tmp_path, monkeypatch):
        # With the cache, a --transferfile resolving to the same remote
        # path as an already-staged --basefile never re-pushes.
        monkeypatch.chdir(tmp_path)
        (tmp_path / "model.bin").write_bytes(b"weights")
        pol = StagingPolicy.from_options(self.opts(
            basefiles=["model.bin"], transfer_files=["model.bin"],
        ))
        st = SimTransport()
        pol.stage_basefiles(st, H1, "w")
        before = st.elapsed(H1)
        pol.stage_in(st, H1, job(arg="x"), 1, "w")
        assert st.elapsed(H1) == pytest.approx(before)  # no second put
        stats = pol.staging_stats()
        assert stats["cache_hits"] == 1 and stats["files_staged"] == 1


class TestCachedCleanup:
    def opts(self, **kw):
        kw.setdefault("sshlogin", ["2/h1,2/h2"])
        return Options(jobs=2, **kw)

    def test_shared_input_survives_until_last_release(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "shared.txt").write_bytes(b"x")
        pol = StagingPolicy.from_options(self.opts(
            transfer_files=["shared.txt"], cleanup=True,
        ))
        st = SimTransport()
        pol.stage_in(st, H1, job(seq=1), 1, "w")
        pol.stage_in(st, H1, job(seq=2), 2, "w")
        pol.cleanup_remote(st, H1, ["shared.txt"], "w")
        assert "shared.txt" in st.files["h1"]  # job 2 still references it
        pol.cleanup_remote(st, H1, ["shared.txt"], "w")
        assert "shared.txt" not in st.files["h1"]

    def test_fetched_outputs_always_removed(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "in.txt").write_bytes(b"x")
        pol = StagingPolicy.from_options(self.opts(
            transfer_files=["in.txt"], cleanup=True,
        ))
        st = SimTransport()
        pol.stage_in(st, H1, job(seq=1), 1, "w")
        pol.stage_in(st, H1, job(seq=2), 2, "w")
        st.provide(H1, "out.txt", b"result")
        pol.cleanup_remote(st, H1, ["in.txt"], "w", fetched=("out.txt",))
        # The per-job output goes; the still-referenced input stays.
        assert "out.txt" not in st.files["h1"]
        assert "in.txt" in st.files["h1"]

    def test_release_prefetched_without_cleanup_keeps_entry(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "in.txt").write_bytes(b"x")
        pol = StagingPolicy.from_options(self.opts(
            transfer_files=["in.txt"], cleanup=False,
        ))
        st = SimTransport()
        pol.stage_in(st, H1, job(seq=1), 1, "w")
        assert pol.release_prefetched(st, H1, ["in.txt"], "w") == 0
        assert "in.txt" in st.files["h1"]
        # And the entry is still dedupable afterwards (no leaked gate).
        before = st.elapsed(H1)
        pol.stage_in(st, H1, job(seq=2), 2, "w")
        assert st.elapsed(H1) == pytest.approx(before)

    def test_release_prefetched_with_cleanup_removes_last_ref(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "in.txt").write_bytes(b"x")
        pol = StagingPolicy.from_options(self.opts(
            transfer_files=["in.txt"], cleanup=True,
        ))
        st = SimTransport()
        pol.stage_in(st, H1, job(seq=1), 1, "w")
        pol.release_prefetched(st, H1, ["in.txt"], "w")
        assert "in.txt" not in st.files["h1"]

    def test_prefetchable_gates_on_slot_templates(self):
        pol = StagingPolicy.from_options(self.opts(
            transfer_files=["in/{%}.txt"],
        ))
        assert not pol.prefetchable
        pol = StagingPolicy.from_options(self.opts(transfer_files=["in/{}.txt"]))
        assert pol.prefetchable
        assert not StagingPolicy.from_options(self.opts()).prefetchable


class TestOptionsValidation:
    def test_staging_flags_require_remote(self):
        from repro.errors import OptionsError

        with pytest.raises(OptionsError):
            Options(transfer_files=["x"])
        with pytest.raises(OptionsError):
            Options(cleanup=True)
        with pytest.raises(OptionsError):
            Options(return_files=["y"], basefiles=["z"])

    def test_remote_property(self):
        assert Options(sshlogin=["n1"]).remote
        assert Options(sshloginfile="hosts.txt").remote
        assert not Options().remote

    def test_ban_after_validated(self):
        from repro.errors import OptionsError

        with pytest.raises(OptionsError):
            Options(ban_after=0)
