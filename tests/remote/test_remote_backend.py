"""RemoteBackend end-to-end: placement, staging, health, local parity."""

import os

import pytest

from repro.core.engine import Parallel
from repro.core.job import Job, JobState
from repro.core.joblog import read_joblog
from repro.core.options import Options
from repro.core.template import CommandTemplate
from repro.faults import FaultPlan, FaultSpec, FaultyTransport
from repro.obs import RunTracer
from repro.remote import (
    LocalTransport,
    RemoteBackend,
    SimTransport,
    parse_sshlogin,
)

FOUR_HOSTS = "2/n1,2/n2,2/n3,2/n4"


def make_backend(specs=FOUR_HOSTS, template="echo {}", transport=None, **kw):
    return RemoteBackend(
        parse_sshlogin(specs),
        transport if transport is not None else LocalTransport(),
        template=CommandTemplate(template),
        **kw,
    )


def run_job_direct(backend, seq=1, arg="a", slot=1, **optkw):
    optkw.setdefault("sshlogin", ["n1"])
    job = Job(seq=seq, args=(arg,), command=f"echo {arg}", attempt=1)
    return backend.run_job(job, slot, Options(jobs=1, **optkw))


class TestPlacement:
    def test_jobs_spread_across_hosts(self):
        st = SimTransport()
        be = make_backend(transport=st)
        opts = Options(jobs=2, sshlogin=[FOUR_HOSTS])
        be.prepare_run(opts)
        for seq in range(1, 5):
            job = Job(seq=seq, args=(str(seq),), command="c", attempt=1)
            res = be.run_job(job, seq, opts)
            assert res.ok
        hosts_used = {h for h, _, _ in st.exec_log}
        # Sequential submissions on an idle roster always pick an idle
        # host, so 4 jobs land on 4 distinct hosts.
        assert hosts_used == {"n1", "n2", "n3", "n4"}

    def test_per_host_slot_in_command(self):
        # {%} must be the per-host slot (1-based within each host), not
        # the scheduler's global slot: the GPU-isolation idiom needs a
        # valid device index on every node independently.
        summary = Parallel(
            "echo {%} {host}", sshlogin=[FOUR_HOSTS], jobs=2,
        ).run([str(i) for i in range(16)])
        assert summary.ok
        for r in summary.results:
            slot_str, host = r.stdout.split()
            assert host in {"n1", "n2", "n3", "n4"}
            assert 1 <= int(slot_str) <= 2  # never beyond the host's slots

    def test_total_slots_caps_scheduler(self):
        be = make_backend("2/n1,3/n2")
        assert be.total_slots == 5

    def test_host_token_literal_for_local_runs(self):
        summary = Parallel("echo {} {host}", jobs=2).run(["a"])
        assert summary.results[0].stdout.strip() == "a {host}"


class TestHealth:
    def test_transport_error_hops_to_another_host(self):
        plan = FaultPlan(seed=3, by_seq={1: FaultSpec("connect_timeout")})
        ft = FaultyTransport(SimTransport(), plan=plan)
        be = make_backend("1/h1,1/h2", transport=ft)
        res = run_job_direct(be, seq=1)
        assert res.ok and res.attempt == 1  # same attempt, different host
        assert ft.injected == {"connect_timeout": 1}

    def test_repeated_failures_ban_host_and_run_completes(self):
        ft = FaultyTransport(SimTransport(), host_down_after={"h1": 0})
        be = make_backend("1/h1,1/h2", transport=ft, ban_after=2)
        opts = Options(jobs=1, sshlogin=["1/h1,1/h2"], ban_after=2)
        be.prepare_run(opts)
        results = []
        for seq in range(1, 6):
            job = Job(seq=seq, args=(str(seq),), command="c", attempt=1)
            results.append(be.run_job(job, seq, opts))
        assert all(r.ok for r in results)
        assert be.pool.is_banned("h1")
        assert all(r.host == "h2" for r in results[2:])

    def test_all_hosts_banned_fails_cleanly(self):
        ft = FaultyTransport(SimTransport(),
                             host_down_after={"h1": 0, "h2": 0})
        be = make_backend("1/h1,1/h2", transport=ft, ban_after=1)
        res = run_job_direct(be)
        assert res.state is JobState.FAILED
        assert res.exit_code == 255
        assert "banned" in res.stderr or "placements" in res.stderr

    def test_staging_error_fails_job_without_ban(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        be = make_backend("1/h1", transport=SimTransport())
        res = run_job_direct(
            be, transfer_files=["no-such-{}.txt"], sshlogin=["1/h1"],
        )
        assert res.state is JobState.FAILED and res.exit_code == 255
        assert "staging failed" in res.stderr
        assert not be.pool.is_banned("h1")

    def test_tracer_emits_transport_events_and_host_spans(self):
        events = []

        class Sink:
            def handle(self, event):
                events.append(event)

            def close(self):
                pass

        ft = FaultyTransport(SimTransport(), host_down_after={"h1": 0})
        be = make_backend("1/h1,1/h2", transport=ft, ban_after=1)
        tracer = RunTracer(sinks=[Sink()])
        be.bind_tracer(tracer)
        opts = Options(jobs=1, sshlogin=["1/h1,1/h2"], ban_after=1)
        be.prepare_run(opts)
        job = Job(seq=1, args=("a",), command="c", attempt=1)
        tracer.job_submitted(1)
        tracer.attempt_started(1, 1, 1)
        res = be.run_job(job, 1, opts)
        tracer.attempt_finished(job, res)
        names = [e.name for e in events if e.name]
        assert "transport_error" in names and "host_banned" in names
        assert tracer.spans[1].attempts[0].host == "h2"


class TestLocalhostStagingSkip:
    """GNU Parallel does no --transferfile/--return/--cleanup for ':':
    there is no transport hop, so a "transfer" is a same-path no-op and
    cleanup would delete the user's original files."""

    def test_cleanup_never_deletes_user_input(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "data.txt").write_text("precious\n")
        summary = Parallel(
            "cat {}", sshlogin=[":"], jobs=2,
            transfer_files=["{}"], cleanup=True,
        ).run(["data.txt"])
        assert summary.ok
        assert summary.results[0].stdout == "precious\n"
        assert (tmp_path / "data.txt").read_text() == "precious\n"

    def test_cleanup_never_deletes_returned_output(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "in.txt").write_text("abc\n")
        summary = Parallel(
            "tr a-z A-Z < in.txt > out-{}.txt", sshlogin=[":"], jobs=1,
            transfer_files=["in.txt"], return_files=["out-{}.txt"],
            cleanup=True,
        ).run(["1"])
        assert summary.ok
        assert (tmp_path / "in.txt").read_text() == "abc\n"
        assert (tmp_path / "out-1.txt").read_text() == "ABC\n"

    def test_mixed_roster_stages_named_hosts_only(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "in.txt").write_text("x\n")
        st = SimTransport()
        be = RemoteBackend(
            parse_sshlogin("1/n1,1/:"), st,
            template=CommandTemplate("cat in.txt"),
        )
        opts = Options(
            jobs=1, sshlogin=["1/n1,1/:"], transfer_files=["in.txt"],
        )
        be.prepare_run(opts)
        for seq in (1, 2):
            job = Job(seq=seq, args=(str(seq),), command="cat in.txt", attempt=1)
            assert be.run_job(job, seq, opts).ok
        # Both hosts executed, but only the named host saw a transfer.
        assert {h for h, _, _ in st.exec_log} == {"n1", ":"}
        assert list(st.files) == ["n1"]
        assert (tmp_path / "in.txt").exists()


class TestLifecycle:
    def test_renew_gives_fresh_pool_same_transport(self):
        be = make_backend("1/h1", transport=SimTransport())
        be.pool.ban("h1")
        fresh = be.renew()
        assert fresh.transport is be.transport
        assert not fresh.pool.is_banned("h1")

    def test_cancel_all_returns_killed(self):
        be = make_backend("1/h1", transport=SimTransport())
        be.cancel_all()
        res = run_job_direct(be)
        assert res.state is JobState.KILLED

    def test_engine_reuse_across_runs(self):
        engine = Parallel("echo {}", sshlogin=["2/a,2/b"], jobs=2)
        assert engine.run(["1", "2"]).ok
        assert engine.run(["3", "4"]).ok


class TestLocalParityAcceptance:
    """A 4-host LocalTransport run with full staging must be byte-identical
    (``--results`` tree) and exit-accounting-identical (joblog) to the
    plain local backend running the same workload."""

    COMMAND = "mkdir -p out && tr a-z A-Z < in/{}.txt > out/{}.txt && cat out/{}.txt"
    INPUTS = [f"f{i:02d}" for i in range(12)]

    def _populate(self, root):
        (root / "in").mkdir()
        for name in self.INPUTS:
            (root / "in" / f"{name}.txt").write_text(f"payload of {name}\n")

    def _run(self, root, remote):
        os.chdir(root)
        self._populate(root)
        kw = dict(
            jobs=2 if remote else 8,
            joblog=str(root / "joblog.tsv"),
            results=str(root / "results"),
            keep_order=True,
        )
        if remote:
            kw.update(
                sshlogin=[FOUR_HOSTS],
                transfer_files=["in/{}.txt"],
                return_files=["out/{}.txt"],
                cleanup=True,
            )
        summary = Parallel(self.COMMAND, **kw).run(self.INPUTS)
        assert summary.ok
        return summary

    @staticmethod
    def _results_tree(root):
        tree = {}
        base = root / "results"
        for dirpath, _dirs, files in os.walk(base):
            for fname in files:
                path = os.path.join(dirpath, fname)
                tree[os.path.relpath(path, base)] = open(path, "rb").read()
        return tree

    def test_byte_identical_results_and_joblog(self, tmp_path, monkeypatch):
        local_root = tmp_path / "local"
        remote_root = tmp_path / "remote"
        local_root.mkdir()
        remote_root.mkdir()
        cwd = os.getcwd()
        try:
            self._run(local_root, remote=False)
            self._run(remote_root, remote=True)
        finally:
            os.chdir(cwd)

        # --results trees: byte-for-byte identical.
        assert self._results_tree(remote_root) == self._results_tree(local_root)

        # --return round-tripped every output file with correct content.
        for name in self.INPUTS:
            got = (remote_root / "out" / f"{name}.txt").read_text()
            assert got == f"payload of {name}\n".upper()

        # Joblog parity: same seqs, same exit codes; remote lines name
        # roster hosts.
        local_log = {e.seq: e for e in read_joblog(str(local_root / "joblog.tsv"))}
        remote_log = {e.seq: e for e in read_joblog(str(remote_root / "joblog.tsv"))}
        assert set(remote_log) == set(local_log) == set(range(1, 13))
        for seq in local_log:
            assert remote_log[seq].exitval == local_log[seq].exitval == 0
            assert remote_log[seq].host in {"n1", "n2", "n3", "n4"}

    def test_cleanup_left_no_staged_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        self._populate(tmp_path)
        transport = LocalTransport()
        backend = RemoteBackend(
            parse_sshlogin(FOUR_HOSTS),
            transport,
            template=CommandTemplate(self.COMMAND),
        )
        summary = Parallel(
            self.COMMAND, backend=backend,
            sshlogin=[FOUR_HOSTS], jobs=2,
            transfer_files=["in/{}.txt"], return_files=["out/{}.txt"],
            cleanup=True,
        ).run(self.INPUTS)
        assert summary.ok
        for spec in parse_sshlogin(FOUR_HOSTS):
            root = transport.host_root(spec)
            leftovers = [
                os.path.join(d, f)
                for d, _dirs, files in os.walk(root)
                for f in files
            ]
            assert leftovers == []
        transport.close()
