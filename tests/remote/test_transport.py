"""LocalTransport (real subprocesses) and SimTransport (virtual time)."""

import os

import pytest

from repro.errors import StagingError, TransportError
from repro.remote.hosts import HostSpec
from repro.remote.transport import LocalTransport, SimTransport
from repro.sim.netmodel import NetModel

N1 = HostSpec("n1", 2)
N2 = HostSpec("n2", 2)
LOCAL = HostSpec(":", 2)


@pytest.fixture
def lt(tmp_path):
    transport = LocalTransport(root=str(tmp_path / "hosts"))
    yield transport
    transport.close()


class TestLocalTransportRoots:
    def test_named_hosts_get_isolated_roots(self, lt):
        r1, r2 = lt.host_root(N1), lt.host_root(N2)
        assert r1 != r2
        assert os.path.isdir(r1) and os.path.isdir(r2)

    def test_colon_host_has_no_fake_root(self, lt):
        assert lt.host_root(LOCAL) is None
        assert lt.ensure_workdir(LOCAL, None) == os.getcwd()

    def test_workdir_default_is_host_root(self, lt):
        assert lt.ensure_workdir(N1, None) == lt.host_root(N1)

    def test_workdir_path_is_rooted(self, lt):
        wd = lt.ensure_workdir(N1, "/scratch/run")
        assert wd == os.path.join(lt.host_root(N1), "scratch/run")
        assert os.path.isdir(wd)

    def test_tmpdir_workdir_unique_and_removed_on_close(self, tmp_path):
        lt = LocalTransport(root=str(tmp_path / "hosts"))
        wd = lt.ensure_workdir(N1, "...")
        assert os.path.isdir(wd)
        lt.close()
        assert not os.path.exists(wd)

    def test_own_root_removed_on_close(self):
        lt = LocalTransport()  # lazily owns a mkdtemp root
        root = lt.host_root(N1)
        lt.close()
        assert not os.path.exists(root)


class TestLocalTransportExec:
    def test_staged_file_visible_only_on_its_host(self, lt, tmp_path):
        src = tmp_path / "a.txt"
        src.write_text("payload\n")
        wd1 = lt.ensure_workdir(N1, None)
        wd2 = lt.ensure_workdir(N2, None)
        lt.put(N1, str(src), "a.txt", wd1)
        ok = lt.execute(N1, "cat a.txt", workdir=wd1)
        miss = lt.execute(N2, "cat a.txt", workdir=wd2)
        assert ok.exit_code == 0 and ok.stdout == "payload\n"
        assert miss.exit_code != 0

    def test_nonzero_exit_is_a_result_not_an_error(self, lt):
        wd = lt.ensure_workdir(N1, None)
        res = lt.execute(N1, "exit 7", workdir=wd)
        assert res.exit_code == 7 and not res.timed_out

    def test_timeout_kills_and_flags(self, lt):
        wd = lt.ensure_workdir(N1, None)
        res = lt.execute(N1, "sleep 30", workdir=wd, timeout=0.2)
        assert res.timed_out and res.exit_code != 0

    def test_stdin_reaches_command(self, lt):
        wd = lt.ensure_workdir(N1, None)
        res = lt.execute(N1, "wc -l", workdir=wd, stdin="1\n2\n3\n")
        assert res.stdout.strip() == "3"

    def test_env_reaches_command(self, lt):
        wd = lt.ensure_workdir(N1, None)
        res = lt.execute(N1, "echo $REPRO_X", workdir=wd, env={"REPRO_X": "42"})
        assert res.stdout.strip() == "42"

    def test_spawn_failure_is_transport_error(self, tmp_path):
        lt = LocalTransport(root=str(tmp_path / "h"), shell="/nonexistent-shell")
        wd = lt.ensure_workdir(N1, None)
        with pytest.raises(TransportError) as exc:
            lt.execute(N1, "true", workdir=wd)
        assert exc.value.phase == "execute"
        lt.close()

    def test_get_missing_file_is_staging_error(self, lt, tmp_path):
        wd = lt.ensure_workdir(N1, None)
        with pytest.raises(StagingError):
            lt.get(N1, "no-such.txt", str(tmp_path / "out.txt"), wd)

    def test_put_get_roundtrip_and_remove(self, lt, tmp_path):
        src = tmp_path / "x.bin"
        src.write_bytes(b"\x00\x01\x02")
        wd = lt.ensure_workdir(N1, None)
        assert lt.put(N1, str(src), "d/x.bin", wd) == 3
        dest = tmp_path / "back.bin"
        assert lt.get(N1, "d/x.bin", str(dest), wd) == 3
        assert dest.read_bytes() == b"\x00\x01\x02"
        assert lt.remove(N1, ["d/x.bin"], wd) == 1
        assert not os.path.exists(os.path.join(wd, "d/x.bin"))
        # the "d" directory is deliberately kept: pruning a shared workdir
        # would race with concurrent jobs on the host's other slots

    def test_cancel_all_refuses_new_work(self, lt):
        wd = lt.ensure_workdir(N1, None)
        lt.cancel_all()
        res = lt.execute(N1, "echo hi", workdir=wd)
        assert res.exit_code != 0


class TestSimTransport:
    def test_execute_advances_virtual_clock_only(self):
        st = SimTransport(NetModel(latency_s=0.5), runtime_s=2.0)
        wd = st.ensure_workdir(N1, None)
        res = st.execute(N1, "anything", workdir=wd)
        assert res.exit_code == 0
        assert st.elapsed(N1) == pytest.approx(2.5)
        assert st.elapsed(N2) == 0.0

    def test_handler_scripts_outcomes(self):
        st = SimTransport(handler=lambda h, cmd: (3, f"{h.name}:{cmd}"))
        wd = st.ensure_workdir(N1, None)
        res = st.execute(N1, "job-1", workdir=wd)
        assert (res.exit_code, res.stdout) == (3, "n1:job-1")

    def test_simulated_timeout(self):
        st = SimTransport(NetModel(latency_s=0.0), runtime_s=10.0)
        res = st.execute(N1, "slow", workdir="w", timeout=1.0)
        assert res.timed_out
        assert st.elapsed(N1) == pytest.approx(1.0)

    def test_put_reads_real_file_and_charges_transfer(self, tmp_path):
        src = tmp_path / "f.txt"
        src.write_bytes(b"x" * 1000)
        st = SimTransport(NetModel(latency_s=0.0, bw_Bps=100.0))
        wd = st.ensure_workdir(N1, None)
        assert st.put(N1, str(src), "f.txt", wd) == 1000
        assert st.elapsed(N1) == pytest.approx(10.0)  # 1000 B / 100 B/s
        assert st.files["n1"]["f.txt"] == b"x" * 1000

    def test_put_missing_source_is_staging_error(self, tmp_path):
        st = SimTransport()
        with pytest.raises(StagingError):
            st.put(N1, str(tmp_path / "absent"), "a", "w")

    def test_get_writes_local_file(self, tmp_path):
        st = SimTransport()
        st.provide(N1, "out.txt", b"result\n")
        dest = tmp_path / "nested" / "out.txt"
        assert st.get(N1, "out.txt", str(dest), "w") == 7
        assert dest.read_bytes() == b"result\n"

    def test_get_missing_is_staging_error(self, tmp_path):
        st = SimTransport()
        with pytest.raises(StagingError):
            st.get(N1, "nope", str(tmp_path / "o"), "w")

    def test_remove_clears_virtual_files(self):
        st = SimTransport()
        st.provide(N1, "a", b"1")
        st.provide(N1, "b", b"2")
        assert st.remove(N1, ["a", "missing"], "w") == 1
        assert "a" not in st.files["n1"] and "b" in st.files["n1"]

    def test_jitter_is_deterministic_per_seed(self):
        def total(seed):
            st = SimTransport(NetModel(latency_s=1.0, jitter=0.5),
                              runtime_s=1.0, seed=seed)
            for _ in range(5):
                st.execute(N1, "c", workdir="w")
            return st.elapsed(N1)

        assert total(7) == total(7)
        assert total(7) != total(8)

    def test_exec_log_records_placement(self):
        st = SimTransport()
        st.execute(N1, "c1", workdir="w", seq=1)
        st.execute(N2, "c2", workdir="w", seq=2)
        assert st.exec_log == [("n1", "c1", 1), ("n2", "c2", 2)]
