"""Roster parsing and HostPool placement/health semantics."""

import threading

import pytest

from repro.core.options import Options
from repro.errors import OptionsError
from repro.remote.hosts import (
    HostPool,
    HostSpec,
    hosts_from_options,
    parse_sshlogin,
    parse_sshloginfile,
)


class TestParseSshlogin:
    def test_bare_host_inherits_default_slots(self):
        (h,) = parse_sshlogin("node1", default_slots=16)
        assert h == HostSpec("node1", 16)

    def test_slash_syntax_overrides_slots(self):
        (h,) = parse_sshlogin("8/node1", default_slots=16)
        assert h.slots == 8

    def test_comma_separated_list(self):
        hosts = parse_sshlogin("8/node1,16/node2,:", default_slots=4)
        assert [(h.name, h.slots) for h in hosts] == [
            ("node1", 8), ("node2", 16), (":", 4),
        ]

    def test_colon_is_localhost(self):
        (h,) = parse_sshlogin(":")
        assert h.is_local

    def test_named_host_is_not_local(self):
        (h,) = parse_sshlogin("node1")
        assert not h.is_local

    def test_user_at_host(self):
        (h,) = parse_sshlogin("2/alice@node9")
        assert h.user == "alice"
        assert h.name == "alice@node9"

    def test_whitespace_tolerated(self):
        hosts = parse_sshlogin(" 2/node1 , node2 ")
        assert [h.name for h in hosts] == ["node1", "node2"]

    @pytest.mark.parametrize("bad", ["x/node1", "3/", "", ","])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(OptionsError):
            parse_sshlogin(bad)

    def test_zero_slots_rejected(self):
        with pytest.raises(OptionsError):
            parse_sshlogin("0/node1")


class TestSshloginfile:
    def test_file_with_comments_and_blanks(self, tmp_path):
        f = tmp_path / "hosts.txt"
        f.write_text(
            "# roster for the run\n"
            "8/node1\n"
            "\n"
            "node2  # trailing comment\n"
            ":\n"
        )
        hosts = parse_sshloginfile(str(f), default_slots=4)
        assert [(h.name, h.slots) for h in hosts] == [
            ("node1", 8), ("node2", 4), (":", 4),
        ]

    def test_empty_file_rejected(self, tmp_path):
        f = tmp_path / "hosts.txt"
        f.write_text("# nothing here\n")
        with pytest.raises(OptionsError):
            parse_sshloginfile(str(f))


class TestHostsFromOptions:
    def test_jobs_is_per_host_default(self):
        opts = Options(sshlogin=["node1,node2"], jobs=8)
        hosts = hosts_from_options(opts)
        assert all(h.slots == 8 for h in hosts)

    def test_duplicates_collapse_last_wins(self):
        opts = Options(sshlogin=["4/node1", "2/node1"], jobs=1)
        (h,) = hosts_from_options(opts)
        assert h.slots == 2

    def test_sshloginfile_merges(self, tmp_path):
        f = tmp_path / "hosts.txt"
        f.write_text("node2\n")
        opts = Options(sshlogin=["node1"], sshloginfile=str(f), jobs=3)
        assert [h.name for h in hosts_from_options(opts)] == ["node1", "node2"]

    def test_no_hosts_rejected(self):
        opts = Options(jobs=2)
        with pytest.raises(OptionsError):
            hosts_from_options(opts)


class TestHostPool:
    def make(self, specs="2/a,2/b", ban_after=3):
        return HostPool(parse_sshlogin(specs), ban_after=ban_after)

    def test_least_loaded_placement(self):
        pool = self.make("2/a,2/b")
        l1 = pool.acquire()
        l2 = pool.acquire()
        # Second lease must go to the other (now less-loaded) host.
        assert {l1.host.name, l2.host.name} == {"a", "b"}

    def test_lowest_slot_first_per_host(self):
        pool = self.make("3/a")
        leases = [pool.acquire() for _ in range(3)]
        assert [l.slot for l in leases] == [1, 2, 3]
        pool.release(leases[1])
        assert pool.acquire().slot == 2  # lowest freed slot comes back first

    def test_capacity_blocks_until_release(self):
        pool = self.make("1/a")
        lease = pool.acquire()
        assert pool.acquire(timeout=0.05) is None
        pool.release(lease)
        assert pool.acquire(timeout=0.05) is not None

    def test_release_wakes_blocked_acquirer(self):
        pool = self.make("1/a")
        lease = pool.acquire()
        got = []
        done = threading.Event()

        def grab():
            got.append(pool.acquire(timeout=5))
            done.set()

        t = threading.Thread(target=grab)
        t.start()
        pool.release(lease)
        assert done.wait(5)
        t.join()
        assert got[0] is not None

    def test_double_release_rejected(self):
        pool = self.make("1/a")
        lease = pool.acquire()
        pool.release(lease)
        with pytest.raises(OptionsError):
            pool.release(lease)

    def test_ban_after_consecutive_failures(self):
        pool = self.make("1/a,1/b", ban_after=2)
        a = pool.hosts[0]
        assert not pool.record_failure(a)
        assert pool.record_failure(a)  # second consecutive -> banned now
        assert pool.is_banned("a")
        assert pool.banned_hosts() == ["a"]
        assert pool.live_slots() == 1

    def test_success_resets_failure_streak(self):
        pool = self.make("1/a", ban_after=2)
        a = pool.hosts[0]
        pool.record_failure(a)
        pool.record_success(a)
        assert not pool.record_failure(a)  # streak restarted
        assert not pool.is_banned("a")

    def test_banned_host_not_placed(self):
        pool = self.make("1/a,1/b")
        pool.ban("a")
        for _ in range(2):
            lease = pool.acquire(timeout=0.2)
            assert lease is not None and lease.host.name == "b"
            pool.release(lease)

    def test_all_banned_returns_none(self):
        pool = self.make("1/a")
        pool.ban("a")
        assert pool.acquire(timeout=0.2) is None

    def test_ban_wakes_blocked_acquirers(self):
        pool = self.make("1/a")
        pool.acquire()
        results = []
        done = threading.Event()

        def grab():
            results.append(pool.acquire(timeout=5))
            done.set()

        t = threading.Thread(target=grab)
        t.start()
        pool.ban("a")
        assert done.wait(5)
        t.join()
        assert results[0] is None  # no live host left for the waiter

    def test_abort_unblocks(self):
        pool = self.make("1/a")
        pool.acquire()
        results = []
        done = threading.Event()

        def grab():
            results.append(pool.acquire())
            done.set()

        t = threading.Thread(target=grab)
        t.start()
        pool.abort()
        assert done.wait(5)
        t.join()
        assert results[0] is None

    def test_total_and_summary(self):
        pool = self.make("2/a,3/b")
        assert pool.total_slots == 5
        lease = pool.acquire()
        pool.record_success(lease.host)
        summary = pool.summary()
        assert summary[lease.host.name]["dispatched"] == 1
        assert summary[lease.host.name]["in_use"] == 1
