"""StagingCache: content-addressed dedup, refcounts, gates, invalidation."""

import threading
import time

import pytest

from repro.errors import StagingError
from repro.remote.cache import StagingCache
from repro.remote.hosts import HostSpec
from repro.remote.transport import SimTransport

H1 = HostSpec("h1", 2)
H2 = HostSpec("h2", 2)


class CountingTransport(SimTransport):
    """SimTransport that counts physical puts/removes."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self.puts = 0
        self.removes = 0

    def put(self, host, src, relpath, workdir):
        self.puts += 1
        return super().put(host, src, relpath, workdir)

    def remove(self, host, relpaths, workdir):
        self.removes += 1
        return super().remove(host, relpaths, workdir)


@pytest.fixture
def src(tmp_path):
    path = tmp_path / "in.dat"
    path.write_bytes(b"shared payload")
    return str(path)


class TestDedup:
    def test_second_ensure_is_a_hit(self, src):
        cache, st = StagingCache(), CountingTransport()
        moved, hit = cache.ensure(st, H1, src, "in.dat", "w")
        assert (moved, hit) == (14, False)
        moved, hit = cache.ensure(st, H1, src, "in.dat", "w")
        assert (moved, hit) == (0, True)
        assert st.puts == 1

    def test_per_host_not_global(self, src):
        cache, st = StagingCache(), CountingTransport()
        cache.ensure(st, H1, src, "in.dat", "w")
        _, hit = cache.ensure(st, H2, src, "in.dat", "w")
        assert not hit and st.puts == 2

    def test_distinct_rels_stage_separately(self, src):
        cache, st = StagingCache(), CountingTransport()
        cache.ensure(st, H1, src, "a.dat", "w")
        _, hit = cache.ensure(st, H1, src, "b.dat", "w")
        assert not hit and st.puts == 2

    def test_missing_source_is_staging_error(self, tmp_path):
        cache = StagingCache()
        with pytest.raises(StagingError):
            cache.ensure(CountingTransport(), H1,
                         str(tmp_path / "nope"), "nope", "w")

    def test_stats_track_bytes(self, src):
        cache, st = StagingCache(), CountingTransport()
        for _ in range(3):
            cache.ensure(st, H1, src, "in.dat", "w")
        stats = cache.stats()
        assert stats["files_staged"] == 1
        assert stats["cache_hits"] == 2
        assert stats["bytes_moved"] == 14
        assert stats["bytes_staged_avoided"] == 28


class TestContentIdentity:
    def test_touched_mtime_same_content_promotes_to_hit(self, tmp_path, src):
        # A copy with a different (path, mtime) but identical bytes must
        # not re-push: the sha256 promotion proves identity.
        cache, st = StagingCache(), CountingTransport()
        cache.ensure(st, H1, src, "in.dat", "w")
        twin = tmp_path / "twin.dat"
        twin.write_bytes(b"shared payload")
        _, hit = cache.ensure(st, H1, str(twin), "in.dat", "w")
        assert hit and st.puts == 1

    def test_changed_content_restages(self, tmp_path, src):
        cache, st = StagingCache(), CountingTransport()
        cache.ensure(st, H1, src, "in.dat", "w")
        other = tmp_path / "other.dat"
        other.write_bytes(b"DIFFERENT bytes!!")
        _, hit = cache.ensure(st, H1, str(other), "in.dat", "w")
        assert not hit and st.puts == 2
        assert st.files["h1"]["in.dat"] == b"DIFFERENT bytes!!"

    def test_source_mutated_in_place_restages(self, tmp_path):
        path = tmp_path / "mut.dat"
        path.write_bytes(b"v1")
        cache, st = StagingCache(), CountingTransport()
        cache.ensure(st, H1, str(path), "mut.dat", "w")
        time.sleep(0.01)  # ensure a distinct mtime_ns
        path.write_bytes(b"v2")
        _, hit = cache.ensure(st, H1, str(path), "mut.dat", "w")
        assert not hit
        assert st.files["h1"]["mut.dat"] == b"v2"


class TestRefcounts:
    def test_last_release_evicts(self, src):
        cache, st = StagingCache(), CountingTransport()
        cache.ensure(st, H1, src, "in.dat", "w")  # ref 1
        cache.ensure(st, H1, src, "in.dat", "w")  # ref 2
        assert cache.release(H1, ["in.dat"]) == []
        doomed = cache.release(H1, ["in.dat"])
        assert doomed == ["in.dat"]
        cache.removal_done(H1, doomed)

    def test_permanent_never_released(self, src):
        cache, st = StagingCache(), CountingTransport()
        cache.ensure(st, H1, src, "in.dat", "w", permanent=True)
        assert cache.release(H1, ["in.dat"]) == []
        assert cache.release(H1, ["in.dat"]) == []

    def test_unknown_rel_ignored(self):
        cache = StagingCache()
        assert cache.release(H1, ["never-staged"]) == []

    def test_restage_after_eviction(self, src):
        cache, st = StagingCache(), CountingTransport()
        cache.ensure(st, H1, src, "in.dat", "w")
        doomed = cache.release(H1, ["in.dat"])
        st.remove(H1, doomed, "w")
        cache.removal_done(H1, doomed)
        _, hit = cache.ensure(st, H1, src, "in.dat", "w")
        assert not hit and st.puts == 2


class TestGates:
    def test_concurrent_ensures_push_once(self, src):
        release = threading.Event()

        class SlowTransport(CountingTransport):
            def put(self, host, src_, relpath, workdir):
                release.wait(2.0)
                return super().put(host, src_, relpath, workdir)

        cache, st = StagingCache(), SlowTransport()
        hits = []

        def worker():
            hits.append(cache.ensure(st, H1, src, "in.dat", "w")[1])

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        release.set()
        for t in threads:
            t.join(timeout=5.0)
        assert st.puts == 1
        assert sorted(hits) == [False, True, True, True]

    def test_owner_failure_wakes_waiters_to_retry(self, src):
        calls = []

        class FlakyTransport(CountingTransport):
            def put(self, host, src_, relpath, workdir):
                calls.append(1)
                if len(calls) == 1:
                    time.sleep(0.05)
                    raise OSError("link dropped")
                return super().put(host, src_, relpath, workdir)

        cache, st = StagingCache(), FlakyTransport()
        outcomes = []

        def worker():
            try:
                outcomes.append(cache.ensure(st, H1, src, "in.dat", "w"))
            except OSError:
                outcomes.append("error")

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        # One thread saw the failure; the other retried and staged.
        assert "error" in outcomes
        assert any(o != "error" and o[1] is False for o in outcomes)
        assert st.files["h1"]["in.dat"] == b"shared payload"

    def test_removal_gate_blocks_restage(self, src):
        cache, st = StagingCache(), CountingTransport()
        cache.ensure(st, H1, src, "in.dat", "w")
        doomed = cache.release(H1, ["in.dat"])
        assert doomed == ["in.dat"]  # gate installed, remove "in flight"
        staged = threading.Event()

        def restage():
            cache.ensure(st, H1, src, "in.dat", "w")
            staged.set()

        t = threading.Thread(target=restage, daemon=True)
        t.start()
        # The re-stage must wait for the physical remove to finish.
        assert not staged.wait(0.1)
        st.remove(H1, doomed, "w")
        cache.removal_done(H1, doomed)
        assert staged.wait(5.0)
        t.join(timeout=5.0)
        assert st.files["h1"]["in.dat"] == b"shared payload"


class TestInvalidation:
    def test_invalidate_host_forces_repush(self, src):
        cache, st = StagingCache(), CountingTransport()
        cache.ensure(st, H1, src, "in.dat", "w")
        cache.ensure(st, H2, src, "in.dat", "w")
        cache.invalidate_host("h1")
        _, hit1 = cache.ensure(st, H1, src, "in.dat", "w")
        _, hit2 = cache.ensure(st, H2, src, "in.dat", "w")
        assert not hit1  # h1's state was forgotten
        assert hit2      # h2 untouched

    def test_invalidate_clears_removal_gates(self, src):
        cache, st = StagingCache(), CountingTransport()
        cache.ensure(st, H1, src, "in.dat", "w")
        cache.release(H1, ["in.dat"])  # gate installed
        cache.invalidate_host("h1")
        # No deadlock: the gate was set and dropped.
        _, hit = cache.ensure(st, H1, src, "in.dat", "w")
        assert not hit
