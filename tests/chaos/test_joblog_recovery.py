"""Joblog damage and ``--resume`` recovery round trips.

The paper's §Queues/Joblogs recovery story: a run dies, the joblog's
final record is torn mid-write, and ``--resume`` must re-run exactly the
unfinished work — never crash on the damage, never re-run finished work.
"""

import pytest

from repro import Parallel
from repro.core.joblog import completed_seqs, read_joblog, scan_joblog
from repro.errors import ReproError
from repro.faults import corrupt_joblog, truncate_joblog


def run_echo(n, path, **opts):
    return Parallel(lambda x: x, jobs=1, joblog=str(path), **opts).run(
        [str(i) for i in range(n)]
    )


def test_truncated_tail_skips_torn_record_and_resume_reruns_it(tmp_path):
    log = tmp_path / "joblog"
    assert run_echo(10, log).ok

    removed = truncate_joblog(str(log), seed=3)
    assert removed > 0
    scan = scan_joblog(str(log))
    assert scan.n_malformed == 1
    assert len(scan.entries) == 9
    # jobs=1 completes in seq order, so the torn record is seq 10.
    done = completed_seqs(str(log), include_failed=True)
    assert done == set(range(1, 10))

    resumed = run_echo(10, log, resume=True)
    assert resumed.n_skipped == 9
    assert resumed.n_dispatched == 1
    assert [r.seq for r in resumed.results] == [10]

    # After the resume, the log is whole again: nothing left to re-run.
    third = run_echo(10, log, resume=True)
    assert third.n_skipped == 10
    assert third.n_dispatched == 0


def test_corrupted_interior_records_counted_and_rerun(tmp_path):
    log = tmp_path / "joblog"
    assert run_echo(8, log).ok

    lines = corrupt_joblog(str(log), seed=1, n_lines=2)
    assert len(lines) == 2
    scan = scan_joblog(str(log))
    assert scan.n_malformed == 2
    assert scan.malformed_lines == lines
    assert len(scan.entries) == 6

    resumed = run_echo(8, log, resume=True)
    assert resumed.n_skipped == 6
    assert resumed.n_dispatched == 2  # exactly the corrupted seqs
    assert resumed.ok


def test_scan_is_clean_on_undamaged_log(tmp_path):
    log = tmp_path / "joblog"
    run_echo(5, log)
    scan = scan_joblog(str(log))
    assert scan.ok
    assert scan.n_malformed == 0
    assert len(scan.entries) == 5
    assert read_joblog(str(log)) == scan.entries


def test_damage_helpers_refuse_empty_logs(tmp_path):
    log = tmp_path / "joblog"
    log.write_text("Seq\tHost\tStarttime\tJobRuntime\tSend\tReceive\tExitval\tSignal\tCommand\n")
    with pytest.raises(ReproError):
        truncate_joblog(str(log))
    with pytest.raises(ReproError):
        corrupt_joblog(str(log))


def test_truncation_is_deterministic(tmp_path):
    log1, log2 = tmp_path / "a", tmp_path / "b"
    run_echo(6, log1)
    log2.write_text(log1.read_text())
    truncate_joblog(str(log1), seed=9)
    truncate_joblog(str(log2), seed=9)
    assert log1.read_text() == log2.read_text()


def test_resume_failed_reruns_failures_after_damage(tmp_path):
    log = tmp_path / "joblog"
    # Seqs 1..6; odd inputs fail (exit 1).
    summary = Parallel(lambda x: 1 / 0 if int(x) % 2 else x, jobs=1,
                       joblog=str(log)).run([str(i) for i in range(6)])
    assert summary.n_failed == 3
    truncate_joblog(str(log), seed=0)  # tears the seq-6 record (a failure)
    # --resume-failed skips only clean successes: seqs 1, 3, 5.
    resumed = Parallel(lambda x: x, jobs=1, joblog=str(log),
                       resume_failed=True).run([str(i) for i in range(6)])
    assert resumed.n_skipped == 3
    assert resumed.n_dispatched == 3  # the two failures + the torn record
    assert resumed.ok
