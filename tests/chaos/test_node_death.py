"""Node-death injection: work resharded to survivors, locally and in sim."""

import threading

import pytest

from repro.cluster import FRONTIER, MachineSpec, SimMachine
from repro.driver import run_multinode
from repro.driver.local_multi import run_local_sharded
from repro.errors import ReproError, SimulationError
from repro.faults import NodeFaultPlan
from repro.sim import Environment
from repro.simengine import SimTask
from repro.slurm import Allocation

CALM = MachineSpec(
    name="calm",
    node=FRONTIER.node,
    total_nodes=16,
    alloc_delay_mean=1e-9,
    straggler_prob=0.0,
)


def _tracking_worker():
    """A worker recording every arg it ran (the engine stringifies args)."""
    seen = []
    lock = threading.Lock()

    def work(x):
        with lock:
            seen.append(int(x))

    return work, seen


# -- local sharded driver -----------------------------------------------------
def test_dead_instance_work_resharded_to_survivors():
    work, seen = _tracking_worker()
    run = run_local_sharded(work, list(range(12)), 3, jobs_per_instance=2,
                            node_faults=NodeFaultPlan(die_after={1: 2}))
    assert run.ok
    assert run.failed_instances == [1]
    assert run.n_lost == 2  # instance 1's shard of 4, died after 2
    assert run.rebalanced
    # Every input ran exactly once across the first wave + rescue wave.
    assert sorted(seen) == list(range(12))
    assert run.n_succeeded == 12


def test_multiple_deaths_and_uneven_shards():
    work, seen = _tracking_worker()
    run = run_local_sharded(work, list(range(10)), 4, jobs_per_instance=1,
                            node_faults=NodeFaultPlan(die_after={0: 0, 2: 1}))
    assert run.failed_instances == [0, 2]
    # Cyclic shards of 10 over 4: inst 0 holds 2 (lost both), inst 2
    # holds 3 (lost 2 of them).
    assert run.n_lost == 2 + 2
    assert sorted(seen) == list(range(10))


def test_all_instances_dead_raises():
    work, _ = _tracking_worker()
    with pytest.raises(ReproError, match="no survivor"):
        run_local_sharded(work, list(range(6)), 2, jobs_per_instance=1,
                          node_faults=NodeFaultPlan(die_after={0: 0, 1: 1}))


def test_seeded_random_deaths_are_reproducible():
    def fingerprint():
        work, seen = _tracking_worker()
        run = run_local_sharded(work, list(range(40)), 8, jobs_per_instance=1,
                                node_faults=NodeFaultPlan(death_prob=0.4, seed=6))
        return tuple(run.failed_instances), run.n_lost, sorted(seen)

    first = fingerprint()
    assert fingerprint() == first
    assert first[0], "seed 6 at p=0.4 over 8 instances should kill someone"
    assert first[2] == list(range(40))  # no input lost for good


def test_survivor_without_faults_is_unchanged():
    work, seen = _tracking_worker()
    run = run_local_sharded(work, list(range(8)), 2, jobs_per_instance=2)
    assert run.failed_instances == []
    assert run.n_lost == 0
    assert not run.rebalanced
    assert sorted(seen) == list(range(8))


# -- simulated multi-node driver ----------------------------------------------
def _allocation(n_nodes):
    env = Environment()
    machine = SimMachine(env, CALM, with_lustre=False)
    return Allocation(machine, n_nodes)


def test_sim_node_death_rebalances_to_survivors():
    alloc = _allocation(4)
    run = run_multinode(alloc, list(range(40)),
                        lambda item, nid: SimTask(duration=0.01),
                        jobs_per_node=4,
                        node_faults=NodeFaultPlan(die_after={2: 3}))
    assert run.failed_nodes == [2]
    assert run.n_lost == 7  # node 2's shard of 10, died after 3
    assert run.n_tasks == 40  # nothing lost for good
    # The rescue wave ran on survivors, not the dead node.
    rescue_nodes = {r.node for r in run.results[-7:]}
    assert all("node" in n or n for n in rescue_nodes)


def test_sim_death_without_rebalance_loses_tasks():
    alloc = _allocation(4)
    run = run_multinode(alloc, list(range(40)),
                        lambda item, nid: SimTask(duration=0.01),
                        jobs_per_node=4,
                        node_faults=NodeFaultPlan(die_after={2: 3}),
                        rebalance=False)
    assert run.n_tasks == 33
    assert run.n_lost == 7


def test_sim_all_nodes_dead_raises():
    alloc = _allocation(2)
    with pytest.raises(SimulationError, match="no survivor"):
        run_multinode(alloc, list(range(10)),
                      lambda item, nid: SimTask(duration=0.01),
                      jobs_per_node=2,
                      node_faults=NodeFaultPlan(die_after={0: 0, 1: 0}))


def test_sim_rebalanced_makespan_exceeds_clean_run():
    clean = run_multinode(_allocation(4), list(range(40)),
                          lambda item, nid: SimTask(duration=0.05),
                          jobs_per_node=2)
    faulted = run_multinode(_allocation(4), list(range(40)),
                            lambda item, nid: SimTask(duration=0.05),
                            jobs_per_node=2,
                            node_faults=NodeFaultPlan(die_after={0: 1}))
    assert faulted.n_tasks == clean.n_tasks == 40
    # Re-running lost work serially after the first wave costs time.
    assert faulted.makespan > clean.makespan
