"""Dispatcher-shard death injection: SIGKILL a spawner worker mid-run.

The DispatcherPool's fault contract (``repro.core.backends.pool``): a
shard that dies takes no user work with it — its in-flight jobs re-queue
onto surviving shards, the joblog seals cleanly, and exit codes match a
fault-free run.  With *no* survivors the backend drops to its in-process
Popen path and the run still completes.

These tests drive ``run_scheduler`` with an explicit backend instance
(the ``Parallel`` facade builds a fresh backend per run, which would hide
the pool we need to attack).
"""

import os
import signal
import threading
import time

import pytest

from repro.core.backends.local import LocalShellBackend
from repro.core.backends.pool import DispatcherPool
from repro.core.joblog import scan_joblog
from repro.core.options import Options
from repro.core.scheduler import run_scheduler
from repro.core.template import CommandTemplate

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="sharded dispatch requires POSIX"
)

N_JOBS = 24


def _run_sharded(tmp_path, tag, n_dispatchers, killer=None, rpc_batch=1):
    """One sharded run; returns (summary, ordered output, joblog path)."""
    backend = LocalShellBackend()
    options = Options(
        jobs=4, dispatchers=n_dispatchers, keep_order=True,
        rpc_batch=rpc_batch,
        joblog=str(tmp_path / f"{tag}.log"),
    )
    chunks = []
    template = CommandTemplate("sh -c 'sleep 0.05; echo ok-{}'")
    thread = None
    try:
        backend.prepare_run(options)
        if killer is not None:
            thread = threading.Thread(
                target=killer, args=(backend,), daemon=True
            )
            thread.start()
        summary = run_scheduler(
            template, range(1, N_JOBS + 1), options, backend,
            emit=lambda _res, text: chunks.append(text),
        )
    finally:
        if thread is not None:
            thread.join(timeout=5)
        backend.close()
    return summary, "".join(chunks), options.joblog


def _kill_busiest_shard(backend):
    """Freeze the busiest shard, confirm it still owns work, then kill.

    SIGSTOP before SIGKILL: a stopped shard cannot post result frames,
    so any load still attributed to it parent-side after the stop is
    work the kill is guaranteed to strand.  Observing ``load > 0`` and
    killing directly races — the in-flight jobs can drain in the gap
    between the load snapshot and signal delivery, leaving nothing to
    re-queue.
    """
    deadline = time.time() + 5.0
    while time.time() < deadline:
        pool = backend._pool
        if pool is not None:
            # Empty until DispatcherPool.start() registers the shards.
            loads = pool.shard_loads()
            if loads and max(loads) > 0:
                victim = loads.index(max(loads))
                pid = pool.shard_pids[victim]
                try:
                    os.kill(pid, signal.SIGSTOP)
                except ProcessLookupError:
                    continue
                time.sleep(0.02)  # already-sent result frames drain
                if pool.shard_loads()[victim] > 0:
                    os.kill(pid, signal.SIGKILL)
                    return
                os.kill(pid, signal.SIGCONT)
        time.sleep(0.005)
    raise AssertionError("no shard ever stayed busy long enough to kill")


def _kill_every_shard(backend):
    deadline = time.time() + 5.0
    while time.time() < deadline:
        pool = backend._pool
        pids = pool.shard_pids if pool is not None else []
        if pids and all(pid is not None for pid in pids):
            # Let some work land first so in-flight jobs exist to lose.
            if max(pool.shard_loads()) > 0:
                for pid in pool.shard_pids:
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass
                return
        time.sleep(0.005)
    raise AssertionError("pool never started")


def _sealed_seqs(joblog_path):
    scan = scan_joblog(joblog_path)
    assert scan.ok, f"malformed joblog lines: {scan.malformed_lines}"
    return sorted(e.seq for e in scan.entries), scan.entries


def test_shard_death_requeues_in_flight_jobs(tmp_path):
    clean_summary, clean_text, _ = _run_sharded(tmp_path, "clean", 2)
    assert clean_summary.ok

    backend_seen = {}

    def killer(backend):
        _kill_busiest_shard(backend)
        backend_seen["pool"] = backend._pool

    summary, text, joblog = _run_sharded(tmp_path, "faulted", 2, killer=killer)

    # Exit codes match the fault-free run: every job succeeded exactly once.
    assert summary.ok
    assert summary.n_succeeded == clean_summary.n_succeeded == N_JOBS
    assert text == clean_text  # keep-order stream is byte-identical

    # The dead shard's in-flight jobs really were re-dispatched.
    pool = backend_seen["pool"]
    assert pool.requeued >= 1
    assert not all(alive for alive in (s.alive for s in pool._shards))

    # The joblog sealed cleanly: every seq, no torn or duplicate rows.
    seqs, entries = _sealed_seqs(joblog)
    assert seqs == list(range(1, N_JOBS + 1))
    assert all(e.exitval == 0 and e.signal == 0 for e in entries)


def test_shard_death_mid_frame_requeues_exactly_once(tmp_path):
    """SIGKILL a shard while batched frames are in flight.

    With ``--rpc-batch 8`` a dead shard can hold whole frames of spawn
    records — some on the wire, some still in its outbox.  The contract
    is unchanged from the per-message era: every in-flight job re-queues
    onto a survivor *exactly once* (no dropped seq, no duplicate joblog
    row) and the keep-order output matches a fault-free run.
    """
    clean_summary, clean_text, _ = _run_sharded(
        tmp_path, "clean-framed", 2, rpc_batch=8
    )
    assert clean_summary.ok

    backend_seen = {}

    def killer(backend):
        _kill_busiest_shard(backend)
        backend_seen["pool"] = backend._pool

    summary, text, joblog = _run_sharded(
        tmp_path, "faulted-framed", 2, killer=killer, rpc_batch=8
    )

    assert summary.ok
    assert summary.n_succeeded == N_JOBS
    assert text == clean_text  # byte-identical despite the mid-frame death

    # The control-plane stats surfaced on the summary agree with the pool.
    pool = backend_seen["pool"]
    assert pool.requeued >= 1
    assert summary.rpc.get("requeued", 0) == pool.requeued
    assert summary.rpc.get("batch") == 8

    # Exactly once: every seq sealed, none twice, all clean exits.
    seqs, entries = _sealed_seqs(joblog)
    assert seqs == list(range(1, N_JOBS + 1))
    assert len(entries) == N_JOBS
    assert all(e.exitval == 0 and e.signal == 0 for e in entries)


def test_all_shards_dead_falls_back_in_process(tmp_path):
    summary, text, joblog = _run_sharded(
        tmp_path, "massacre", 2, killer=_kill_every_shard
    )
    # No survivor shards — the in-process Popen rung finishes the run.
    assert summary.ok
    assert summary.n_succeeded == N_JOBS
    assert text == "".join(f"ok-{i}\n" for i in range(1, N_JOBS + 1))
    seqs, _ = _sealed_seqs(joblog)
    assert seqs == list(range(1, N_JOBS + 1))


def test_pool_survives_repeated_deaths():
    # Kill a shard after every few jobs; the pool must keep absorbing
    # deaths for as long as any shard remains.
    pool = DispatcherPool(3)
    pool.start()
    try:
        for round_no in range(2):
            for i in range(6):
                reply = pool.run(f"echo r{round_no}-{i}")
                assert reply.kind == "done" and reply.returncode == 0
            victim = next(s for s in pool._shards if s.alive)
            os.kill(victim.process.pid, signal.SIGKILL)
            deadline = time.time() + 5.0
            while victim.alive and time.time() < deadline:
                time.sleep(0.005)
            assert not victim.alive
        assert pool.alive  # 3 shards - 2 deaths = 1 survivor
        assert pool.run("echo final").returncode == 0
    finally:
        pool.close()
