"""Transport-fault chaos: hosts misbehave, the run must not.

The headline scenario is the paper's worst practical failure on a
multi-node roster: one of four hosts dies *mid-run* with jobs in flight.
The contract is that the run still completes every job correctly — the
dead host gets banned after ``ban_after`` consecutive transport failures
and its displaced jobs hop to survivors within the same attempt, so the
joblog/results accounting is indistinguishable from a healthy run.
"""

import pytest

from repro import Parallel
from repro.core.joblog import read_joblog
from repro.core.template import CommandTemplate
from repro.faults import FaultPlan, FaultSpec, FaultyTransport
from repro.obs import RunTracer
from repro.remote import RemoteBackend, SimTransport, parse_sshlogin

FOUR_HOSTS = "2/n1,2/n2,2/n3,2/n4"


class EventSink:
    def __init__(self):
        self.events = []

    def handle(self, event):
        self.events.append(event)

    def close(self):
        pass

    def named(self, name):
        return [e for e in self.events if e.name == name]


def chaos_run(n_jobs, transport, *, ban_after=2, specs=FOUR_HOSTS, **optkw):
    backend = RemoteBackend(
        parse_sshlogin(specs), transport,
        template=CommandTemplate("echo {}"),
    )
    sink = EventSink()
    summary = Parallel(
        "echo {}", backend=backend, sshlogin=[specs],
        ban_after=ban_after, tracer=RunTracer(sinks=[sink]), **optkw,
    ).run([str(i) for i in range(n_jobs)])
    return summary, sink


class TestTransportFaultKinds:
    def test_connect_timeout_is_transparent_to_the_run(self):
        # A transient connect blip on three seqs: each hops to another
        # host inside attempt 1 — no retries consumed, nothing failed.
        plan = FaultPlan(seed=1, by_seq={
            2: FaultSpec("connect_timeout"),
            5: FaultSpec("connect_timeout"),
            9: FaultSpec("connect_timeout"),
        })
        ft = FaultyTransport(SimTransport(), plan=plan)
        summary, sink = chaos_run(12, ft)
        assert summary.ok and summary.n_succeeded == 12
        assert all(r.attempt == 1 for r in summary.results)
        assert ft.injected == {"connect_timeout": 3}
        assert len(sink.named("transport_error")) == 3

    def test_mid_job_drop_replaces_the_attempt(self):
        # `drop` fires *after* the inner execute: the work happened but
        # the result was lost in transit.  The backend must re-place the
        # same attempt, accepting the double execution.
        plan = FaultPlan(seed=2, by_seq={4: FaultSpec("drop")})
        st = SimTransport()
        ft = FaultyTransport(st, plan=plan)
        summary, _ = chaos_run(8, ft)
        assert summary.ok
        assert ft.injected == {"drop": 1}
        execs = [seq for _h, _c, seq in st.exec_log]
        assert execs.count(4) == 2  # executed, dropped, re-executed
        assert sorted(set(execs)) == list(range(1, 9))

    def test_random_transport_faults_never_fail_a_run(self):
        # A 15% connect-timeout storm across a 60-job run: transient
        # host-hopping must absorb all of it.
        plan = FaultPlan(seed=7, random_faults=[
            (0.15, FaultSpec("connect_timeout")),
        ])
        ft = FaultyTransport(SimTransport(), plan=plan)
        summary, _ = chaos_run(60, ft)
        assert summary.ok and summary.n_succeeded == 60

    def test_transport_faults_ignored_by_local_backends(self):
        # The same plan on a FaultyBackend over a local backend is a
        # no-op: transport kinds only mean something to a transport.
        from repro.core.backends.callable_backend import CallableBackend
        from repro.faults import FaultyBackend

        plan = FaultPlan(by_seq={1: FaultSpec("connect_timeout")})
        backend = FaultyBackend(CallableBackend(lambda x: x), plan)
        summary = Parallel(lambda x: x, jobs=2, backend=backend).run(
            ["a", "b"]
        )
        assert summary.ok
        assert backend.injected == {}


class TestHostDiesMidRun:
    N_JOBS = 40

    def run_with_dead_host(self, victim_budget):
        st = SimTransport()
        ft = FaultyTransport(st, host_down_after={"n3": victim_budget})
        summary, sink = chaos_run(self.N_JOBS, ft, ban_after=2)
        return summary, sink, st, ft

    def test_run_completes_when_one_of_four_hosts_dies(self, tmp_path):
        summary, sink, st, ft = self.run_with_dead_host(5)
        assert summary.ok
        assert summary.n_succeeded == self.N_JOBS
        assert {r.seq for r in summary.results} == set(
            range(1, self.N_JOBS + 1)
        )
        # The victim did at most its pre-death budget of work.
        assert ft.completed_on("n3") <= 5
        assert sum(1 for r in summary.results if r.host == "n3") <= 5
        # Survivors carried the rest.
        survivors = {r.host for r in summary.results} - {"n3"}
        assert survivors <= {"n1", "n2", "n4"} and survivors
        # The death was observed and acted on: banned exactly once.
        banned = sink.named("host_banned")
        assert [e.data["host"] for e in banned] == ["n3"]

    def test_dead_host_joblog_accounting_stays_clean(self, tmp_path):
        st = SimTransport()
        ft = FaultyTransport(st, host_down_after={"n3": 5})
        backend = RemoteBackend(
            parse_sshlogin(FOUR_HOSTS), ft,
            template=CommandTemplate("echo {}"),
        )
        joblog = str(tmp_path / "joblog.tsv")
        summary = Parallel(
            "echo {}", backend=backend, sshlogin=[FOUR_HOSTS],
            ban_after=2, joblog=joblog,
        ).run([str(i) for i in range(self.N_JOBS)])
        assert summary.ok
        entries = read_joblog(joblog)
        assert sorted(e.seq for e in entries) == list(
            range(1, self.N_JOBS + 1)
        )
        assert all(e.exitval == 0 for e in entries)
        # Every joblog line names the host that actually ran the job.
        by_seq = {r.seq: r.host for r in summary.results}
        assert all(e.host == by_seq[e.seq] for e in entries)

    def test_host_dead_from_start_never_runs_anything(self):
        summary, sink, st, ft = self.run_with_dead_host(0)
        assert summary.ok and summary.n_succeeded == self.N_JOBS
        assert ft.completed_on("n3") == 0
        assert all(r.host != "n3" for r in summary.results)

    def test_all_hosts_dead_fails_every_job_cleanly(self):
        ft = FaultyTransport(
            SimTransport(),
            host_down_after={f"n{i}": 0 for i in range(1, 5)},
        )
        summary, sink = chaos_run(6, ft, ban_after=1, retries=1)
        assert not summary.ok
        assert summary.n_failed == 6
        assert all(r.exit_code == 255 for r in summary.results)
        assert {e.data["host"] for e in sink.named("host_banned")} == {
            "n1", "n2", "n3", "n4"
        }
