"""Unit behaviour of the fault-injection plan and backend decorator."""

import pytest

from repro.core.backends.callable_backend import CallableBackend
from repro.core.job import Job, JobState
from repro.core.options import Options
from repro.errors import ReproError
from repro.faults import FaultPlan, FaultSpec, FaultyBackend, NodeFaultPlan


def _run(backend, seq, attempt=1, timeout=None, options=None):
    job = Job(seq=seq, args=(str(seq),), command=f"job {seq}", attempt=attempt)
    return backend.run_job(job, slot=1, options=options or Options(jobs=1),
                           timeout=timeout)


# -- FaultSpec ----------------------------------------------------------------
def test_fault_spec_validation():
    with pytest.raises(ReproError):
        FaultSpec("meteor-strike")
    with pytest.raises(ReproError):
        FaultSpec("crash", exit_code=0)
    with pytest.raises(ReproError):
        FaultSpec("flaky", times=0)
    with pytest.raises(ReproError):
        FaultSpec("slow", delay=-1)


def test_times_defaults_flaky_transient_crash_persistent():
    assert FaultSpec("flaky").attempts_affected == 1
    assert FaultSpec("crash").attempts_affected == float("inf")
    assert FaultSpec("crash", times=2).attempts_affected == 2


# -- FaultPlan selection ------------------------------------------------------
def test_by_seq_targets_exact_seq_and_respects_times():
    plan = FaultPlan(by_seq={3: FaultSpec("flaky", times=2)})
    assert plan.fault_for(3, 1) is not None
    assert plan.fault_for(3, 2) is not None
    assert plan.fault_for(3, 3) is None  # transient window over
    assert plan.fault_for(4, 1) is None


def test_by_seq_outranks_random_rules():
    always = (1.0, FaultSpec("hang"))
    plan = FaultPlan(seed=5, by_seq={1: FaultSpec("crash")}, random_faults=[always])
    assert plan.fault_for(1, 1).kind == "crash"
    assert plan.fault_for(2, 1).kind == "hang"


def test_random_selection_is_deterministic_and_order_free():
    def decisions(seed):
        plan = FaultPlan(seed=seed, random_faults=[
            (0.2, FaultSpec("crash")), (0.1, FaultSpec("hang")),
        ])
        return [getattr(plan.spec_for(seq), "kind", None) for seq in range(1, 500)]

    first = decisions(11)
    assert decisions(11) == first  # same seed, fresh plan object
    assert decisions(12) != first  # seed actually matters
    hit_rate = sum(k is not None for k in first) / len(first)
    assert 0.15 < hit_rate < 0.45  # roughly 1 - 0.8*0.9


def test_probability_validation():
    with pytest.raises(ReproError):
        FaultPlan(random_faults=[(1.5, FaultSpec("crash"))])


def test_json_round_trip_and_load(tmp_path):
    plan = FaultPlan(seed=9, by_seq={7: FaultSpec("crash", exit_code=3)},
                     random_faults=[(0.25, FaultSpec("flaky", times=2))])
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.to_dict() == plan.to_dict()
    assert [clone.spec_for(s) for s in range(1, 100)] == \
           [plan.spec_for(s) for s in range(1, 100)]

    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    assert FaultPlan.load(str(path)).to_dict() == plan.to_dict()
    assert FaultPlan.load(plan.to_json()).to_dict() == plan.to_dict()
    with pytest.raises(ReproError):
        FaultPlan.load("{not json")


# -- FaultyBackend ------------------------------------------------------------
def test_crash_injection_produces_failed_result_without_running_job():
    ran = []
    backend = FaultyBackend(CallableBackend(lambda x: ran.append(x)),
                            FaultPlan(by_seq={1: FaultSpec("crash", exit_code=7)}))
    result = _run(backend, seq=1)
    assert result.state is JobState.FAILED
    assert result.exit_code == 7
    assert "fault injection" in result.stderr
    assert ran == []  # the real job never executed
    assert backend.injected == {"crash": 1}


def test_untargeted_jobs_pass_through():
    backend = FaultyBackend(CallableBackend(lambda x: x + "!"),
                            FaultPlan(by_seq={99: FaultSpec("crash")}))
    result = _run(backend, seq=1)
    assert result.state is JobState.SUCCEEDED
    assert result.value == "1!"
    assert backend.injected == {}


def test_signal_injection_negative_exit_code():
    backend = FaultyBackend(CallableBackend(lambda x: x),
                            FaultPlan(by_seq={1: FaultSpec("signal", signal=9)}))
    result = _run(backend, seq=1)
    assert result.exit_code == -9
    assert result.state is JobState.FAILED


def test_hang_consumes_timeout_then_reports_timed_out():
    backend = FaultyBackend(CallableBackend(lambda x: x),
                            FaultPlan(by_seq={1: FaultSpec("hang")}))
    result = _run(backend, seq=1, timeout=0.1)
    assert result.state is JobState.TIMED_OUT
    assert result.runtime >= 0.1


def test_hang_cancelled_early_by_halt():
    backend = FaultyBackend(CallableBackend(lambda x: x),
                            FaultPlan(by_seq={1: FaultSpec("hang")}))
    backend.cancel_all()
    result = _run(backend, seq=1, timeout=5.0)
    assert result.state is JobState.KILLED
    assert result.runtime < 1.0


def test_slow_start_delays_but_succeeds():
    backend = FaultyBackend(CallableBackend(lambda x: x),
                            FaultPlan(by_seq={1: FaultSpec("slow", delay=0.1)}))
    result = _run(backend, seq=1)
    assert result.state is JobState.SUCCEEDED
    assert result.runtime >= 0.1


# -- NodeFaultPlan ------------------------------------------------------------
def test_node_fault_plan_pinned_and_seeded():
    plan = NodeFaultPlan(die_after={0: 2}, death_prob=0.5, seed=3)
    assert plan.death_point(0, 10) == 2
    assert plan.death_point(0, 2) is None  # finished before the crash
    seeded = [plan.death_point(n, 10) for n in range(1, 50)]
    assert seeded == [plan.death_point(n, 10) for n in range(1, 50)]
    assert any(p is not None for p in seeded)
    assert any(p is None for p in seeded)
    assert all(p is None or 0 <= p < 10 for p in seeded)


def test_node_fault_plan_validation():
    with pytest.raises(ReproError):
        NodeFaultPlan(death_prob=2.0)
    with pytest.raises(ReproError):
        NodeFaultPlan(die_after={0: -1})
