"""Chaos suite: the real scheduler under deterministic fault plans.

Every test drives the production dispatch loop (`run_scheduler` via
`Parallel`) through a seeded `FaultPlan` and asserts exact, reproducible
behaviour: retry counts, halt semantics, slot accounting, ordering.
"""

import threading
import time

from repro import Parallel
from repro.core.backends.base import Backend
from repro.core.backends.callable_backend import CallableBackend
from repro.core.job import JobState
from repro.faults import FaultPlan, FaultSpec, FaultyBackend


class ConcurrencyProbe(Backend):
    """Pass-through decorator recording peak concurrent run_job calls."""

    def __init__(self, inner):
        self.inner = inner
        self.host = inner.host
        self._lock = threading.Lock()
        self._current = 0
        self.peak = 0
        self.calls = 0

    def run_job(self, job, slot, options, timeout=None):
        with self._lock:
            self._current += 1
            self.calls += 1
            self.peak = max(self.peak, self._current)
        try:
            return self.inner.run_job(job, slot, options, timeout=timeout)
        finally:
            with self._lock:
                self._current -= 1

    def cancel_all(self):
        self.inner.cancel_all()

    def close(self):
        self.inner.close()


def faulty(func, plan):
    return FaultyBackend(CallableBackend(func), plan)


# -- retry counts -------------------------------------------------------------
def test_persistent_crash_exhausts_exact_retry_budget():
    plan = FaultPlan(by_seq={2: FaultSpec("crash"), 5: FaultSpec("crash")})
    backend = faulty(lambda x: x, plan)
    summary = Parallel(lambda x: x, jobs=3, retries=3, backend=backend).run(
        ["a", "b", "c", "d", "e", "f"]
    )
    assert summary.n_failed == 2
    assert summary.n_succeeded == 4
    attempts = {r.seq: r.attempt for r in summary.results}
    assert attempts[2] == 3 and attempts[5] == 3  # full --retries budget
    assert all(attempts[s] == 1 for s in (1, 3, 4, 6))
    assert summary.n_dispatched == 6 + 2 * 2  # 2 extra attempts per crasher
    assert backend.injected == {"crash": 6}


def test_flaky_faults_converge_within_budget():
    plan = FaultPlan(seed=4, random_faults=[(0.4, FaultSpec("flaky", times=2))])
    backend = faulty(lambda x: x * 2, plan)
    summary = Parallel(lambda x: x, jobs=4, retries=3, backend=backend).run(
        list(range(40))
    )
    assert summary.ok
    assert summary.n_succeeded == 40
    flaked = [r for r in summary.results if r.attempt == 3]
    assert len(flaked) == backend.injected.get("flaky", 0) / 2
    assert all(r.attempt in (1, 3) for r in summary.results)


def test_spurious_signal_is_retried():
    plan = FaultPlan(by_seq={1: FaultSpec("signal", signal=11, times=1)})
    summary = Parallel(lambda x: x, jobs=1, retries=2,
                       backend=faulty(lambda x: x, plan)).run(["a"])
    assert summary.ok
    assert summary.results[0].attempt == 2


# -- timeouts and slot accounting ---------------------------------------------
def test_hangs_time_out_release_slots_and_recover():
    """6 hangs through 2 slots: leaked slots would deadlock this run."""
    plan = FaultPlan(by_seq={s: FaultSpec("hang", times=1) for s in (1, 3, 5, 7, 9, 11)})
    probe = ConcurrencyProbe(faulty(lambda x: x, plan))
    start = time.time()
    summary = Parallel(lambda x: x, jobs=2, retries=2, timeout=0.15,
                       backend=probe).run(list(range(12)))
    assert summary.ok
    assert summary.n_succeeded == 12
    assert probe.peak <= 2  # never more in flight than slots
    retried = {r.seq for r in summary.results if r.attempt == 2}
    assert retried == {1, 3, 5, 7, 9, 11}
    assert time.time() - start < 10.0


# -- halt semantics -----------------------------------------------------------
def test_halt_now_cancels_in_flight_within_grace():
    """--halt now with slow jobs in flight returns promptly, not after 5 s."""
    # Hangs first, crash last: seqs 1-3 are wedged in flight when the
    # halt fires, so the kill path has real victims to cancel.
    plan = FaultPlan(by_seq={1: FaultSpec("hang"), 2: FaultSpec("hang"),
                             3: FaultSpec("hang"), 4: FaultSpec("crash")})
    backend = faulty(lambda x: x, plan)
    start = time.time()
    summary = Parallel(lambda x: x, jobs=4, halt="now,fail=1", halt_grace=1.0,
                       backend=backend).run(list(range(8)))
    elapsed = time.time() - start
    assert summary.halted
    assert "fail=1" in summary.halt_reason
    assert elapsed < 3.0  # hangs were cancelled/abandoned, not waited out
    # Every dispatched job is accounted for: no result silently dropped.
    assert len(summary.results) + summary.n_skipped == summary.n_dispatched
    killed = [r for r in summary.results if r.state is JobState.KILLED]
    assert killed, "in-flight hangs must surface as KILLED results"


def test_halt_soon_drains_in_flight_jobs():
    plan = FaultPlan(by_seq={1: FaultSpec("crash")})
    crash_seen = threading.Event()

    def work(x):
        # The in-flight job finishes only after the crash result has been
        # handled (its output emitted), so the halt decision is already
        # made when this job drains — no sleep-length race.
        assert crash_seen.wait(timeout=10.0), "crash result never surfaced"

    def on_output(result, text):
        if result.state is JobState.FAILED:
            crash_seen.set()

    summary = Parallel(work, jobs=2, halt="soon,fail=1", output=on_output,
                       backend=faulty(work, plan)).run(list(range(10)))
    assert summary.halted
    # Reap-then-release: the crash is processed before its slot frees, so
    # nothing beyond the two initially-dispatched jobs ever starts.
    assert summary.n_dispatched == 2
    # Drained, not killed: nothing in flight was abandoned.
    assert all(r.state is not JobState.KILLED for r in summary.results)


# -- ordering -----------------------------------------------------------------
def test_keep_order_output_sequenced_under_out_of_order_failures():
    plan = FaultPlan(by_seq={2: FaultSpec("flaky", times=2),
                             5: FaultSpec("flaky", times=1)})
    emitted = []
    backend = faulty(lambda x: x, plan)
    summary = Parallel(lambda x: f"out-{x}", jobs=4, retries=3, keep_order=True,
                       backend=FaultyBackend(
                           CallableBackend(lambda x: f"out-{x}"), plan),
                       output=lambda r, t: emitted.append(t.strip())).run(
        [str(i) for i in range(8)]
    )
    assert summary.ok
    # Retries finish late and out of order; -k must still hold the line.
    assert emitted == [f"out-{i}" for i in range(8)]


# -- --retry-delay backoff ----------------------------------------------------
def test_retry_delay_applies_exponential_backoff():
    plan = FaultPlan(by_seq={1: FaultSpec("flaky", times=2)})
    start = time.time()
    summary = Parallel(lambda x: x, jobs=2, retries=3, retry_delay=0.2, seed=1,
                       backend=faulty(lambda x: x, plan)).run(["a"])
    elapsed = time.time() - start
    assert summary.ok
    assert summary.results[0].attempt == 3
    # Jittered delays are >= base/2: 0.1 (attempt 1) + 0.2 (attempt 2).
    assert elapsed >= 0.28
    assert elapsed < 3.0  # and capped: never the unjittered worst case x5


def test_retry_delay_does_not_block_other_jobs():
    plan = FaultPlan(by_seq={1: FaultSpec("flaky", times=1)})
    order = []
    lock = threading.Lock()
    rest_done = threading.Event()

    def work(x):
        with lock:
            order.append(x)
            if {"b", "c", "d"} <= set(order):
                rest_done.set()

    # Jittered backoff is >= retry_delay/2 = 0.4s — orders of magnitude
    # beyond what dispatching three trivial jobs needs, so the fresh
    # input deterministically beats the retry's eligibility time.
    summary = Parallel(work, jobs=2, retries=2, retry_delay=0.8, seed=0,
                       backend=FaultyBackend(CallableBackend(work), plan)).run(
        ["a", "b", "c", "d"]
    )
    assert summary.ok
    assert rest_done.is_set(), "fresh input never finished"
    # While "a" backed off, the scheduler kept dispatching fresh input:
    # the retry ran strictly last (b/c/d may interleave among themselves).
    assert len(order) == 4 and order[-1] == "a"


# -- the acceptance scenario --------------------------------------------------
def chaos_invocation(seed):
    """A crash+hang+flaky plan over 200 jobs; returns the run's fingerprint."""
    plan = FaultPlan(seed=seed, random_faults=[
        (0.10, FaultSpec("flaky", times=2)),
        (0.06, FaultSpec("crash", times=1)),
        (0.03, FaultSpec("hang", times=1)),
        (0.04, FaultSpec("signal", signal=9, times=1)),
    ])
    backend = faulty(lambda x: x, plan)
    summary = Parallel(lambda x: x, jobs=16, retries=3, retry_delay=0.01,
                       timeout=0.2, seed=seed, backend=backend).run(
        list(range(200))
    )
    return {
        "n_succeeded": summary.n_succeeded,
        "n_failed": summary.n_failed,
        "n_dispatched": summary.n_dispatched,
        "attempts": tuple(sorted((r.seq, r.attempt) for r in summary.results)),
        "injected": tuple(sorted(backend.injected.items())),
    }


def test_seeded_chaos_run_is_reproducible():
    first = chaos_invocation(seed=42)
    second = chaos_invocation(seed=42)
    assert first == second  # identical retry/success counts, per-seq attempts
    assert first["n_succeeded"] == 200  # transient faults < retries: converged
    assert first["n_dispatched"] > 200  # faults actually fired
    assert dict(first["injected"]).keys() >= {"flaky", "crash"}
    # A different seed really does pick different victims.
    assert chaos_invocation(seed=43)["attempts"] != first["attempts"]
