"""Machine presets and the paper's derived calibration identities."""

import pytest

from repro.cluster.machines import (
    DTN_CLUSTER,
    ENGINE_DISPATCH_RATE,
    FRONTIER,
    FRONTIER_NODE,
    NODE_FORK_RATE,
    PERLMUTTER_CPU,
    PERLMUTTER_CPU_NODE,
    PODMAN_LAUNCH_RATE,
    SHIFTER_LAUNCH_RATE,
    MachineSpec,
    NodeSpec,
)


def test_frontier_node_matches_paper():
    assert FRONTIER_NODE.cores == 128  # 64 dual-threaded cores
    assert FRONTIER_NODE.gpus == 8  # 8 schedulable GCDs


def test_perlmutter_cpu_node_matches_paper():
    assert PERLMUTTER_CPU_NODE.cores == 256
    assert PERLMUTTER_CPU_NODE.gpus == 0


def test_frontier_scale_supports_9000_nodes():
    # 9,000 nodes = 96% of Frontier (paper, Section III).
    assert FRONTIER.total_nodes >= 9000
    assert 9000 / FRONTIER.total_nodes == pytest.approx(0.96, abs=0.01)


def test_full_utilization_floor_single_instance():
    """256 threads / 470 jobs/s = 545 ms minimum task duration (paper)."""
    floor = PERLMUTTER_CPU_NODE.cores / ENGINE_DISPATCH_RATE
    assert floor == pytest.approx(0.545, abs=0.001)


def test_full_utilization_floor_many_instances():
    """256 threads / 6,400 jobs/s = 40 ms minimum task duration (paper)."""
    floor = PERLMUTTER_CPU_NODE.cores / NODE_FORK_RATE
    assert floor == pytest.approx(0.040, abs=0.0005)


def test_shifter_overhead_is_19_percent():
    overhead = 1.0 - SHIFTER_LAUNCH_RATE / NODE_FORK_RATE
    assert overhead == pytest.approx(0.19, abs=0.005)


def test_podman_two_orders_of_magnitude_below_shifter():
    assert SHIFTER_LAUNCH_RATE / PODMAN_LAUNCH_RATE == pytest.approx(80, rel=0.3)


def test_dtn_cluster_has_8_nodes():
    assert DTN_CLUSTER.total_nodes == 8


def test_node_spec_validation():
    with pytest.raises(ValueError):
        NodeSpec(name="bad", cores=0)
    with pytest.raises(ValueError):
        NodeSpec(name="bad", cores=1, fork_rate=0)


def test_machine_spec_validation():
    with pytest.raises(ValueError):
        MachineSpec(name="bad", node=FRONTIER_NODE, total_nodes=0)


def test_fork_rate_from_curve_takes_the_peak():
    from repro.cluster.machines import fork_rate_from_curve

    # A Fig.-3-shaped curve: rises with dispatcher count, then flattens
    # at the node's kernel fork ceiling.
    assert fork_rate_from_curve({1: 470.0, 4: 1800.0, 16: 6400.0,
                                 32: 6350.0}) == 6400.0
    # 1-vCPU shape: contention from K=1 — peak degenerates to K=1's rate.
    assert fork_rate_from_curve({"1": 990.0, "2": 760.0, "4": 540.0}) == 990.0
    with pytest.raises(ValueError):
        fork_rate_from_curve({})
    with pytest.raises(ValueError):
        fork_rate_from_curve({1: 0.0})
