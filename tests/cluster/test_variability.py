"""Allocation-delay and straggler models."""

import numpy as np
import pytest

from repro.cluster.machines import FRONTIER
from repro.cluster.variability import (
    allocation_delays,
    node_ready_times,
    straggler_delays,
)


def rng():
    return np.random.default_rng(42)


def test_allocation_delays_positive_and_near_scaled_mean():
    d = allocation_delays(FRONTIER, 5000, rng())
    assert (d > 0).all()
    expected = FRONTIER.alloc_delay_mean * (1 + 5000 / FRONTIER.total_nodes)
    assert d.mean() == pytest.approx(expected, rel=0.1)


def test_allocation_delay_mean_grows_with_scale():
    small = allocation_delays(FRONTIER, 500, rng()).mean()
    large = allocation_delays(FRONTIER, 9000, rng()).mean()
    assert large > small


def test_allocation_delays_shape():
    assert allocation_delays(FRONTIER, 17, rng()).shape == (17,)
    with pytest.raises(ValueError):
        allocation_delays(FRONTIER, 0, rng())


def test_stragglers_rare_at_small_scale():
    d = straggler_delays(FRONTIER, 1000, rng())
    frac = (d > 0).mean()
    assert frac < 0.02  # well under 2% of nodes


def test_straggler_rate_grows_at_extreme_scale():
    r1, r2 = np.random.default_rng(1), np.random.default_rng(1)
    small = (straggler_delays(FRONTIER, 5000, r1) > 0).mean()
    big = (straggler_delays(FRONTIER, 9000, r2) > 0).mean()
    assert big > small  # contention regime above 7,000 nodes


def test_straggler_delays_heavy_tailed():
    d = straggler_delays(FRONTIER, 9000, rng())
    hits = d[d > 0]
    assert hits.size > 0
    # Lognormal: max should dwarf the median of the hit population.
    assert hits.max() > 3 * np.median(hits)


def test_node_ready_times_compose_both_models():
    r = node_ready_times(FRONTIER, 2000, rng())
    assert r.shape == (2000,)
    assert (r > 0).all()


def test_deterministic_given_seed():
    a = node_ready_times(FRONTIER, 100, np.random.default_rng(7))
    b = node_ready_times(FRONTIER, 100, np.random.default_rng(7))
    assert np.array_equal(a, b)
