"""Acceptance: ``--trace`` output validates and agrees with the joblog.

The ISSUE's bar for the subsystem: a trace written by a real run must
(a) validate against the Chrome trace-event schema and (b) load the same
execution intervals :mod:`repro.analysis.profile` computes from the
joblog — the trace is the joblog's superset, not a parallel truth.
"""

import json

import jsonschema
import pytest

from repro import Parallel
from repro.analysis.profile import (
    intervals_from_joblog,
    profile_from_joblog,
    profile_intervals,
)
from repro.core.options import Options
from repro.obs import (
    CHROME_TRACE_SCHEMA,
    attempt_intervals,
    intervals_from_trace,
    load_trace,
    profile_from_spans,
    profile_from_trace,
    RunTracer,
)

#: Joblog stamps are quantized to 3 decimals; trace stamps are exact.
JOBLOG_QUANTUM = 0.002


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One real subprocess run recorded by trace, metrics and joblog."""
    td = tmp_path_factory.mktemp("acceptance")
    paths = {
        "trace": str(td / "run.trace.json"),
        "metrics": str(td / "run.metrics.jsonl"),
        "joblog": str(td / "run.joblog.tsv"),
    }
    tracer = RunTracer.from_options(
        Options(trace=paths["trace"], metrics=paths["metrics"],
                metrics_interval=0.02)
    )
    options = Options(
        jobs=4, retries=2, tracer=tracer, joblog=paths["joblog"],
    )
    # Seqs divisible by 3 fail once per attempt budget — retries land in
    # both the joblog and the trace.
    engine = Parallel(
        "sh -c 'test $(( {} % 3 )) -ne 0'", options=options
    )
    summary = engine.run(range(1, 13))
    return tracer, summary, paths


def test_trace_validates_against_chrome_schema(traced_run):
    _, _, paths = traced_run
    doc = load_trace(paths["trace"])
    jsonschema.validate(doc, CHROME_TRACE_SCHEMA)
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert "X" in phases and "M" in phases
    assert doc["otherData"]["jobs_cap"] == 4
    assert doc["otherData"]["total"] == 12


def test_trace_has_one_complete_event_per_attempt(traced_run):
    tracer, summary, paths = traced_run
    doc = load_trace(paths["trace"])
    # cat "job" = attempt slices; cat "backend" = spawn/reap overhead spans.
    xs = [
        e for e in doc["traceEvents"]
        if e["ph"] == "X" and e.get("cat") == "job"
    ]
    assert len(xs) == summary.n_dispatched
    retried = [e for e in xs if e["args"].get("retried")]
    assert len(retried) == summary.n_dispatched - len(summary.results)
    # tid is the slot: never outside the cap.
    assert all(1 <= e["tid"] <= 4 for e in xs)


def test_trace_has_backend_overhead_spans(traced_run):
    """Every real-subprocess attempt carries spawn and reap spans."""
    _, summary, paths = traced_run
    doc = load_trace(paths["trace"])
    spans = [
        e for e in doc["traceEvents"]
        if e["ph"] == "X" and e.get("cat") == "backend"
    ]
    by_name: dict[str, int] = {}
    for e in spans:
        by_name[e["name"]] = by_name.get(e["name"], 0) + 1
        assert e["dur"] >= 0
        assert e["args"]["path"] in ("posix", "popen")
    assert by_name.get("spawn") == summary.n_dispatched
    assert by_name.get("reap") == summary.n_dispatched


def test_trace_intervals_match_joblog_intervals(traced_run):
    _, _, paths = traced_run
    t_starts, t_ends = intervals_from_trace(paths["trace"])
    j_starts, j_ends = intervals_from_joblog(paths["joblog"])
    assert len(t_starts) == len(j_starts)
    for trace_side, joblog_side in ((t_starts, j_starts), (t_ends, j_ends)):
        for t, j in zip(sorted(trace_side), sorted(joblog_side)):
            assert abs(t - j) <= JOBLOG_QUANTUM


def test_profiles_agree_across_all_three_sources(traced_run):
    tracer, _, paths = traced_run
    from_trace = profile_from_trace(paths["trace"])
    from_spans = profile_from_spans(tracer.spans.values())
    from_joblog = profile_from_joblog(paths["joblog"])
    assert from_trace.n_jobs == from_spans.n_jobs == from_joblog.n_jobs
    # Spans and the trace round-trip exactly (same numbers, µs precision).
    assert from_trace.makespan == pytest.approx(from_spans.makespan, abs=1e-5)
    assert from_trace.total_busy == pytest.approx(from_spans.total_busy, abs=1e-5)
    assert from_trace.peak_concurrency == from_spans.peak_concurrency
    assert from_trace.peak_concurrency <= 4
    # The joblog agrees modulo its 1 ms stamp quantization.
    n = from_joblog.n_jobs
    assert from_trace.makespan == pytest.approx(
        from_joblog.makespan, abs=2 * JOBLOG_QUANTUM
    )
    assert from_trace.total_busy == pytest.approx(
        from_joblog.total_busy, abs=n * 2 * JOBLOG_QUANTUM
    )


def test_span_intervals_equal_trace_intervals_exactly(traced_run):
    tracer, _, paths = traced_run
    s_starts, s_ends = attempt_intervals(tracer.spans.values())
    t_starts, t_ends = intervals_from_trace(paths["trace"])
    assert sorted(t_starts) == pytest.approx(sorted(s_starts), abs=1e-6)
    assert sorted(t_ends) == pytest.approx(sorted(s_ends), abs=1e-6)


def test_metrics_log_brackets_the_run(traced_run):
    tracer, summary, paths = traced_run
    lines = [json.loads(line) for line in open(paths["metrics"])]
    kinds = [line["kind"] for line in lines]
    assert kinds[0] == "run_meta"
    assert kinds[-1] == "run_end"
    assert kinds.count("sample") == len(kinds) - 2 >= 1
    end = lines[-1]
    assert end["n_dispatched"] == summary.n_dispatched
    assert end["n_failed"] == summary.n_failed
    final_sample = [l for l in lines if l["kind"] == "sample"][-1]
    assert final_sample["completed"] == len(summary.results)
    assert final_sample["attempts_done"] == summary.n_dispatched
