"""RunTracer and EventBus unit tests (fake clock, no engine involved)."""

import threading

import pytest

from repro.core.job import Job, JobResult, JobState
from repro.obs import EventBus, RunTracer
from repro.obs.events import Event, EventKind


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt
        return self.t


def make_result(seq=1, attempt=1, slot=1, start=100.0, end=101.0,
                state=JobState.SUCCEEDED, exit_code=0):
    return JobResult(
        seq=seq, args=("x",), command="echo x", exit_code=exit_code,
        start_time=start, end_time=end, slot=slot, attempt=attempt,
        state=state,
    )


def make_job(seq=1, attempt=1):
    job = Job(seq=seq, args=("x",), command="echo x")
    job.attempt = attempt
    return job


class TestEventBus:
    def test_fan_out_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("a", e.kind)))
        bus.subscribe(lambda e: seen.append(("b", e.kind)))
        bus.publish(Event(ts=1.0, kind=EventKind.SUBMITTED, seq=1))
        assert seen == [("a", "submitted"), ("b", "submitted")]
        assert bus.n_subscribers == 2

    def test_sink_exceptions_are_counted_not_raised(self):
        bus = EventBus()
        seen = []

        def bad(event):
            raise RuntimeError("sink broke")

        bus.subscribe(bad)
        bus.subscribe(lambda e: seen.append(e))
        bus.publish(Event(ts=1.0, kind=EventKind.SUBMITTED))
        bus.publish(Event(ts=2.0, kind=EventKind.SUBMITTED))
        assert len(seen) == 2, "a broken sink must not starve the others"
        assert bus.dropped == 2


class TestTracerLifecycle:
    def test_full_attempt_lifecycle(self):
        clock = FakeClock()
        tracer = RunTracer(node="n0", clock=clock)
        tracer.job_submitted(1)
        clock.advance(0.1)
        tracer.attempt_started(1, 1, slot=2)
        clock.advance(0.1)
        tracer.job_dispatched(1, 1, slot=2)
        clock.advance(0.1)
        tracer.job_running(1, 1, slot=2)
        clock.advance(1.0)
        tracer.attempt_finished(
            make_job(), make_result(slot=2, start=100.3, end=101.3)
        )
        span = tracer.spans[1]
        assert span.closed and span.final_state == "succeeded"
        att = span.attempt(1)
        assert att.timeline() == pytest.approx(
            [100.1, 100.2, 100.3, 100.3, 101.3]
        )
        assert att.runtime == pytest.approx(1.0)
        assert att.exit_code == 0 and not att.retried
        assert tracer.completed == 1 and tracer.attempts_done == 1

    def test_retried_attempt_keeps_job_open(self):
        tracer = RunTracer(clock=FakeClock())
        tracer.attempt_started(1, 1, slot=1)
        tracer.attempt_finished(
            make_job(), make_result(state=JobState.FAILED, exit_code=1),
            retried=True, eligible_at=105.0,
        )
        span = tracer.spans[1]
        assert not span.closed
        assert span.attempt(1).retried
        assert tracer.completed == 0 and tracer.attempts_done == 1
        tracer.attempt_started(1, 2, slot=1)
        tracer.attempt_finished(make_job(attempt=2), make_result(attempt=2))
        assert span.closed and span.n_attempts == 2
        assert tracer.completed == 1 and tracer.attempts_done == 2

    def test_completion_without_open_attempt_is_self_contained(self):
        # Dry-run and shutdown-abandoned jobs finish without slot events.
        tracer = RunTracer(clock=FakeClock())
        tracer.attempt_finished(make_job(), make_result())
        span = tracer.spans[1]
        assert span.closed and span.n_attempts == 1
        assert span.attempt(1).t_slot_acquired is None
        assert span.attempt(1).timeline() == [100.0, 101.0]

    def test_bind_gauges_rejects_unknown_names(self):
        tracer = RunTracer()
        with pytest.raises(ValueError, match="unknown gauges"):
            tracer.bind_gauges(bogus=lambda: 1)

    def test_run_finished_is_idempotent(self, tmp_path):
        closes = []

        class Sink:
            def handle(self, event):
                pass

            def close(self):
                closes.append(1)

        tracer = RunTracer(sinks=[Sink()])
        tracer.run_started(jobs_cap=2)
        tracer.run_finished()
        tracer.run_finished()
        assert closes == [1]

    def test_broken_gauge_reads_zero(self):
        tracer = RunTracer(clock=FakeClock())

        def broken():
            raise RuntimeError("gauge exploded")

        tracer.bind_gauges(queue_depth=broken, slots_in_use=lambda: 3)
        sample = tracer.sample()
        assert sample.queue_depth == 0
        assert sample.slots_in_use == 3


class TestEwma:
    def test_ewma_tracks_completion_rate(self):
        clock = FakeClock()
        tracer = RunTracer(ewma_alpha=0.5, clock=clock)
        tracer.sample()  # baseline: no rate yet
        assert tracer.throughput_ewma == 0.0
        for n in range(10):  # 10 completions per second, sampled each second
            tracer.attempt_started(n + 1, 1, slot=1)
            tracer.attempt_finished(make_job(seq=n + 1), make_result(seq=n + 1))
        clock.advance(1.0)
        tracer.sample()
        assert tracer.throughput_ewma == pytest.approx(5.0)  # 0 + 0.5*(10-0)
        clock.advance(1.0)
        tracer.sample()  # no new completions: rate 0
        assert tracer.throughput_ewma == pytest.approx(2.5)

    def test_sample_ignores_zero_dt(self):
        clock = FakeClock()
        tracer = RunTracer(clock=clock)
        tracer.sample()
        tracer.sample()  # same timestamp: must not divide by zero
        assert tracer.throughput_ewma == 0.0


class TestSamplerThread:
    def test_sampler_runs_and_stops(self):
        tracer = RunTracer(metrics_interval=0.005)
        tracer.bind_gauges(slots_in_use=lambda: 1)
        tracer.run_started(jobs_cap=1)
        deadline = threading.Event()
        for _ in range(200):
            if len(tracer.samples) >= 3:
                break
            deadline.wait(0.01)
        assert len(tracer.samples) >= 3, "sampler thread produced no samples"
        tracer.run_finished()
        n = len(tracer.samples)
        deadline.wait(0.05)
        # At most the final sample may have landed after the stop signal.
        assert len(tracer.samples) == n

    def test_no_sampler_without_interval(self):
        tracer = RunTracer()
        tracer.run_started(jobs_cap=1)
        assert tracer._sampler is None
        tracer.run_finished()
