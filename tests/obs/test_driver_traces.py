"""Merged multi-instance traces and the simulated-run exporter."""

import json

import jsonschema

from repro.cluster import FRONTIER, MachineSpec, SimMachine
from repro.driver import run_local_sharded, run_multinode
from repro.faults.plan import NodeFaultPlan
from repro.obs import CHROME_TRACE_SCHEMA, load_trace, write_sim_trace
from repro.sim import Environment
from repro.simengine import SimTask
from repro.slurm import Allocation

CALM = MachineSpec(
    name="calm",
    node=FRONTIER.node,
    total_nodes=8,
    alloc_delay_mean=1e-9,
    straggler_prob=0.0,
)


def x_events(doc):
    return [e for e in doc["traceEvents"] if e["ph"] == "X"]


def process_names(doc):
    return {
        e["pid"]: e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }


class TestShardedTrace:
    def test_one_pid_per_instance(self, tmp_path):
        trace = str(tmp_path / "sharded.json")
        run = run_local_sharded(
            "true {}", list(range(12)), n_instances=3,
            jobs_per_instance=2, trace=trace,
        )
        assert run.ok and run.trace_path == trace
        assert len(run.tracers) == 3
        doc = load_trace(trace)
        jsonschema.validate(doc, CHROME_TRACE_SCHEMA)
        names = process_names(doc)
        assert sorted(names.values()) == [
            "pyparallel shard0", "pyparallel shard1", "pyparallel shard2"
        ]
        assert len(x_events(doc)) == 12
        # Each instance's four jobs landed under its own pid.
        per_pid = {pid: 0 for pid in names}
        for e in x_events(doc):
            per_pid[e["pid"]] += 1
        assert all(n == 4 for n in per_pid.values())

    def test_rescue_wave_appears_as_its_own_process(self, tmp_path):
        trace = str(tmp_path / "rescue.json")
        plan = NodeFaultPlan(die_after={1: 1})
        run = run_local_sharded(
            "true {}", list(range(12)), n_instances=3,
            jobs_per_instance=2, node_faults=plan, trace=trace,
        )
        assert run.rebalanced
        doc = load_trace(trace)
        jsonschema.validate(doc, CHROME_TRACE_SCHEMA)
        names = set(process_names(doc).values())
        assert "pyparallel shard1" in names
        rescue = {n for n in names if n.endswith("+rescue")}
        assert rescue, "rescue wave missing from the merged trace"
        # Every input ran somewhere: main-wave + rescue events cover all 12.
        assert len(x_events(doc)) == 12

    def test_untraced_run_keeps_no_tracers(self):
        run = run_local_sharded(
            "true {}", list(range(4)), n_instances=2, jobs_per_instance=2
        )
        assert run.tracers == [] and run.trace_path is None


class TestSimTrace:
    def make_run(self, trace=None, n_nodes=2, n_tasks=8):
        env = Environment()
        machine = SimMachine(env, CALM, with_lustre=False)
        alloc = Allocation(machine, n_nodes)
        return run_multinode(
            alloc, list(range(n_tasks)),
            lambda item, nid: SimTask(duration=0.5),
            jobs_per_node=2, trace=trace,
        )

    def test_sim_trace_validates_and_covers_all_tasks(self, tmp_path):
        trace = str(tmp_path / "sim.json")
        run = self.make_run(trace=trace)
        doc = load_trace(trace)
        jsonschema.validate(doc, CHROME_TRACE_SCHEMA)
        assert len(x_events(doc)) == run.n_tasks == 8
        assert doc["otherData"]["n_nodes"] == 2
        assert doc["otherData"]["n_tasks"] == 8
        assert len(process_names(doc)) == 2  # one pid per node

    def test_sim_times_map_to_microseconds(self, tmp_path):
        trace = str(tmp_path / "sim.json")
        run = self.make_run(trace=trace)
        doc = load_trace(trace)
        by_end = {}
        for e in x_events(doc):
            by_end.setdefault(e["pid"], []).append((e["ts"] + e["dur"]) / 1e6)
        latest = max(t for times in by_end.values() for t in times)
        assert latest <= run.makespan + 1e-6

    def test_write_sim_trace_returns_event_count(self, tmp_path):
        run = self.make_run()
        trace = str(tmp_path / "again.json")
        n = write_sim_trace(trace, run.results, meta={"source": "test"})
        assert n == len(run.results) == 8
        doc = json.load(open(trace))
        jsonschema.validate(doc, CHROME_TRACE_SCHEMA)
        assert doc["otherData"]["source"] == "test"
