"""Sink unit tests: Chrome trace translation/schema, metrics JSONL shape."""

import json
import os

import jsonschema
import pytest

from repro.obs import CHROME_TRACE_SCHEMA, ChromeTraceSink, MetricsJsonlSink
from repro.obs.events import Event, EventKind
from repro.obs.sinks import attempt_trace_event, process_name_event


def finished_event(seq=1, attempt=1, slot=2, start=10.0, end=10.5,
                   kind=EventKind.FINISHED, state="succeeded", exit_code=0):
    return Event(
        ts=end, kind=kind, seq=seq, attempt=attempt, slot=slot,
        data={"start": start, "end": end, "state": state,
              "exit_code": exit_code, "command": "echo hi"},
    )


class TestChromeTraceSink:
    def test_finished_becomes_complete_event(self, tmp_path):
        path = str(tmp_path / "t.json")
        sink = ChromeTraceSink(path, node="n0")
        sink.handle(finished_event())
        sink.close()
        doc = json.load(open(path))
        jsonschema.validate(doc, CHROME_TRACE_SCHEMA)
        (x,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert x["name"] == "job 1"
        assert x["tid"] == 2  # tid is the slot
        assert x["ts"] == pytest.approx(10.0 * 1e6)
        assert x["dur"] == pytest.approx(0.5 * 1e6)
        assert x["args"]["state"] == "succeeded"
        assert x["args"]["exit_code"] == 0
        assert x["args"]["command"] == "echo hi"

    def test_retry_event_is_marked_and_named(self, tmp_path):
        path = str(tmp_path / "t.json")
        sink = ChromeTraceSink(path)
        sink.handle(finished_event(attempt=2, kind=EventKind.RETRY_QUEUED,
                                   state="failed", exit_code=1))
        sink.close()
        (x,) = [e for e in json.load(open(path))["traceEvents"]
                if e["ph"] == "X"]
        assert x["name"] == "job 1 (attempt 2)"
        assert x["args"]["retried"] is True

    def test_metrics_become_counter_events_numeric_only(self, tmp_path):
        path = str(tmp_path / "t.json")
        sink = ChromeTraceSink(path)
        sink.handle(Event(ts=1.0, kind=EventKind.METRICS, data={
            "ts": 1.0, "node": "n0", "queue_depth": 3, "slots_in_use": 2,
            "throughput_ewma": 12.5,
        }))
        sink.close()
        doc = json.load(open(path))
        jsonschema.validate(doc, CHROME_TRACE_SCHEMA)
        (c,) = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        # Counter args must be numeric series only: no node, no ts echo.
        assert c["args"] == {"queue_depth": 3, "slots_in_use": 2,
                             "throughput_ewma": 12.5}

    def test_instants_and_run_meta(self, tmp_path):
        path = str(tmp_path / "t.json")
        sink = ChromeTraceSink(path, node="n0")
        sink.handle(Event(ts=1.0, kind=EventKind.RUN_META,
                          data={"jobs_cap": 4, "total": 10}))
        sink.handle(Event(ts=2.0, kind=EventKind.INSTANT, seq=7, slot=3,
                          name="proc_spawn", data={"pid": 1234}))
        sink.handle(Event(ts=3.0, kind=EventKind.INSTANT,
                          name="cancel_all", data={"n_procs": 2}))
        sink.close()
        doc = json.load(open(path))
        jsonschema.validate(doc, CHROME_TRACE_SCHEMA)
        assert doc["otherData"] == {"jobs_cap": 4, "total": 10}
        spawn, cancel = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert spawn["name"] == "proc_spawn"
        assert spawn["s"] == "t"  # slot-scoped instant
        assert spawn["args"] == {"seq": 7, "pid": 1234}
        assert cancel["s"] == "p"  # process-scoped instant

    def test_lifecycle_events_do_not_leak_into_the_trace(self, tmp_path):
        path = str(tmp_path / "t.json")
        sink = ChromeTraceSink(path, node="n0")
        for kind in (EventKind.SUBMITTED, EventKind.SLOT_ACQUIRED,
                     EventKind.DISPATCHED, EventKind.RUNNING,
                     EventKind.RUN_END):
            sink.handle(Event(ts=1.0, kind=kind, seq=1))
        sink.close()
        doc = json.load(open(path))
        # Only the process_name metadata record remains.
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]
        assert doc["traceEvents"][0]["args"]["name"] == "pyparallel n0"

    def test_buffers_until_close(self, tmp_path):
        path = str(tmp_path / "t.json")
        sink = ChromeTraceSink(path)
        sink.handle(finished_event())
        assert not os.path.exists(path), "sink wrote before close"
        sink.close()
        sink.close()  # idempotent
        assert os.path.exists(path)

    def test_long_commands_are_truncated(self):
        event = attempt_trace_event(0, 1, 1, 1, 0.0, 1.0, state="succeeded",
                                    command="x" * 500)
        assert len(event["args"]["command"]) == 160

    def test_schema_rejects_malformed_documents(self):
        with pytest.raises(jsonschema.ValidationError):
            jsonschema.validate({"traceEvents": [{"ph": "X"}]},
                                CHROME_TRACE_SCHEMA)
        with pytest.raises(jsonschema.ValidationError):
            # X without ts/dur.
            jsonschema.validate(
                {"traceEvents": [{"ph": "X", "pid": 0, "tid": 0, "name": "j"}]},
                CHROME_TRACE_SCHEMA,
            )

    def test_process_name_event_shape(self):
        event = process_name_event(3, "pyparallel shard3")
        assert event == {"ph": "M", "name": "process_name", "pid": 3,
                         "tid": 0, "args": {"name": "pyparallel shard3"}}


class TestMetricsJsonlSink:
    def test_sample_and_bracket_lines(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        sink = MetricsJsonlSink(path, node="n1")
        sink.handle(Event(ts=1.0, kind=EventKind.RUN_META,
                          data={"jobs_cap": 2, "node": "n1"}))
        sink.handle(Event(ts=2.0, kind=EventKind.METRICS, data={
            "ts": 2.0, "node": "n1", "queue_depth": 1, "slots_in_use": 2,
            "pool_size": 2, "retry_depth": 0, "in_flight": 2,
            "completed": 5, "attempts_done": 6, "throughput_ewma": 2.5,
        }))
        sink.handle(Event(ts=3.0, kind=EventKind.RUN_END,
                          data={"node": "n1", "n_failed": 0}))
        assert not os.path.exists(path), "sink wrote before close"
        sink.close()
        lines = [json.loads(l) for l in open(path)]
        assert [l["kind"] for l in lines] == ["run_meta", "sample", "run_end"]
        sample = lines[1]
        assert sample["node"] == "n1"
        assert sample["completed"] == 5
        assert sample["throughput_ewma"] == 2.5
        assert lines[2]["n_failed"] == 0

    def test_non_metrics_events_are_ignored(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        sink = MetricsJsonlSink(path)
        sink.handle(finished_event())
        sink.handle(Event(ts=1.0, kind=EventKind.INSTANT, name="proc_spawn"))
        sink.close()
        assert not os.path.exists(path) or open(path).read() == ""
