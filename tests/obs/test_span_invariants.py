"""Property tests: span structure invariants over real scheduler runs.

Every test drives the production dispatch loop (`Parallel` over a
`CallableBackend`, optionally fault-wrapped) with an injected
:class:`RunTracer` and asserts structural invariants of the recorded
spans: monotone stage timestamps, exact reconciliation against the
:class:`RunSummary` and the joblog, nested attempt spans under retries,
and slot-occupancy never exceeding the concurrency cap.
"""

import collections

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Parallel
from repro.analysis.profile import concurrency_timeline
from repro.core.backends.callable_backend import CallableBackend
from repro.core.joblog import read_joblog
from repro.core.options import Options
from repro.faults import FaultPlan, FaultSpec, FaultyBackend
from repro.obs import RunTracer


def traced_run(
    n_jobs,
    jobs_cap,
    fail_seqs=(),
    fail_times=1,
    retries=0,
    joblog=None,
    metrics_interval=None,
):
    """One real engine run with a tracer injected; returns (tracer, summary)."""
    tracer = RunTracer(metrics_interval=metrics_interval)
    backend = CallableBackend(lambda x: x)
    if fail_seqs:
        plan = FaultPlan(
            by_seq={s: FaultSpec("flaky", times=fail_times) for s in fail_seqs}
        )
        backend = FaultyBackend(backend, plan)
    options = Options(
        jobs=jobs_cap, retries=retries, tracer=tracer, joblog=joblog
    )
    engine = Parallel(lambda x: x, backend=backend, options=options)
    summary = engine.run(range(n_jobs))
    return tracer, summary


run_shapes = st.tuples(
    st.integers(min_value=1, max_value=16),  # n_jobs
    st.integers(min_value=1, max_value=4),  # jobs_cap
)


@given(shape=run_shapes)
@settings(max_examples=15, deadline=None)
def test_one_closed_span_per_job_and_counts_reconcile(shape):
    n_jobs, jobs_cap = shape
    tracer, summary = traced_run(n_jobs, jobs_cap)
    assert len(tracer.spans) == n_jobs == len(summary.results)
    assert sorted(tracer.spans) == list(range(1, n_jobs + 1))
    n_attempts = sum(s.n_attempts for s in tracer.spans.values())
    assert n_attempts == summary.n_dispatched
    assert tracer.completed == n_jobs
    assert tracer.attempts_done == summary.n_dispatched
    for result in summary.results:
        span = tracer.spans[result.seq]
        assert span.closed
        assert span.final_state == result.state.value


@given(shape=run_shapes)
@settings(max_examples=15, deadline=None)
def test_attempt_timelines_are_monotone(shape):
    n_jobs, jobs_cap = shape
    tracer, _ = traced_run(n_jobs, jobs_cap)
    for span in tracer.spans.values():
        assert span.t_submitted is not None
        for att in span.attempts:
            stamps = att.timeline()
            assert stamps == sorted(stamps)
            assert span.t_submitted <= stamps[0]
        assert span.t_done is not None
        assert span.t_done >= span.t_submitted


@given(
    shape=run_shapes,
    n_fail=st.integers(min_value=1, max_value=3),
    fail_times=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=15, deadline=None)
def test_retries_nest_attempt_spans(shape, n_fail, fail_times):
    n_jobs, jobs_cap = shape
    fail_seqs = list(range(1, min(n_fail, n_jobs) + 1))
    retries = fail_times + 1  # enough budget for every flake to recover
    tracer, summary = traced_run(
        n_jobs, jobs_cap, fail_seqs=fail_seqs, fail_times=fail_times,
        retries=retries,
    )
    assert summary.n_failed == 0
    for seq in fail_seqs:
        span = tracer.spans[seq]
        assert span.n_attempts == fail_times + 1
        assert [a.attempt for a in span.attempts] == list(
            range(1, fail_times + 2)
        )
        # All but the last attempt failed and were re-queued.
        for att in span.attempts[:-1]:
            assert att.retried
            assert att.state == "failed"
        last = span.attempts[-1]
        assert not last.retried
        assert last.state == "succeeded"
    for seq in range(len(fail_seqs) + 1, n_jobs + 1):
        assert tracer.spans[seq].n_attempts == 1


@given(shape=run_shapes)
@settings(max_examples=15, deadline=None)
def test_slot_held_concurrency_never_exceeds_cap(shape):
    n_jobs, jobs_cap = shape
    tracer, _ = traced_run(n_jobs, jobs_cap)
    starts, ends = [], []
    for span in tracer.spans.values():
        for att in span.attempts:
            assert att.t_slot_acquired is not None and att.t_end is not None
            starts.append(att.t_slot_acquired)
            ends.append(att.t_end)
    _, counts = concurrency_timeline(starts, ends)
    assert counts.max() <= jobs_cap


@given(shape=run_shapes)
@settings(max_examples=15, deadline=None)
def test_slots_are_unique_while_held(shape):
    """No two concurrently-open attempts ever share a slot number."""
    n_jobs, jobs_cap = shape
    tracer, _ = traced_run(n_jobs, jobs_cap)
    by_slot = collections.defaultdict(list)
    for span in tracer.spans.values():
        for att in span.attempts:
            assert 1 <= att.slot <= jobs_cap
            by_slot[att.slot].append((att.t_slot_acquired, att.t_end))
    for intervals in by_slot.values():
        intervals.sort()
        for (_, prev_end), (nxt_start, _) in zip(intervals, intervals[1:]):
            assert nxt_start >= prev_end


@given(
    shape=run_shapes,
    n_fail=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=10, deadline=None)
def test_attempt_spans_reconcile_with_joblog(shape, n_fail, tmp_path_factory):
    n_jobs, jobs_cap = shape
    joblog = str(tmp_path_factory.mktemp("jl") / "joblog.tsv")
    fail_seqs = list(range(1, min(n_fail, n_jobs) + 1))
    tracer, _ = traced_run(
        n_jobs, jobs_cap, fail_seqs=fail_seqs, retries=2, joblog=joblog
    )
    entries = read_joblog(joblog)
    attempts = [a for s in tracer.spans.values() for a in s.attempts]
    # One joblog line per attempt, with matching (1 ms-quantized) stamps.
    assert len(entries) == len(attempts)
    logged = sorted((e.seq, round(e.start_time, 3)) for e in entries)
    spanned = sorted((a.seq, round(a.t_start, 3)) for a in attempts)
    assert logged == spanned


def test_gauge_samples_respect_caps():
    tracer, summary = traced_run(200, 3, metrics_interval=0.002)
    assert summary.n_succeeded == 200
    assert tracer.samples, "sampler thread never fired"
    for sample in tracer.samples:
        assert 0 <= sample.slots_in_use <= 3
        assert 0 <= sample.pool_size <= 3
        assert sample.queue_depth >= 0
        assert sample.retry_depth >= 0
        assert 0 <= sample.in_flight <= 3
        assert 0 <= sample.completed <= 200
        assert sample.attempts_done >= sample.completed
    ts = [s.ts for s in tracer.samples]
    assert ts == sorted(ts)
    assert tracer.samples[-1].completed == 200
