"""The vectorized batch model must match the detailed simulated engine."""

import numpy as np
import pytest

from repro.cluster import PERLMUTTER_CPU, SimMachine
from repro.sim import Environment
from repro.simengine import SimParallel, SimTask, batch_completion_times, batch_makespan


def detailed_completions(durations, jobs):
    env = Environment()
    m = SimMachine(env, PERLMUTTER_CPU, with_lustre=False)
    inst = SimParallel(m.node(0), jobs=jobs)
    proc = inst.run([SimTask(duration=float(d)) for d in durations])
    results = env.run(until=proc)
    return np.array(sorted(r.end_time for r in results))


@pytest.mark.parametrize("jobs", [1, 4, 128])
def test_matches_detailed_engine_constant_durations(jobs):
    durations = np.full(40, 0.05)
    batch = np.sort(batch_completion_times(durations, jobs=jobs))
    detailed = detailed_completions(durations, jobs=jobs)
    np.testing.assert_allclose(batch, detailed, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("jobs", [2, 16, 256])
def test_matches_detailed_engine_random_durations(jobs):
    rng = np.random.default_rng(5)
    durations = rng.uniform(0.0, 0.3, size=60)
    batch = np.sort(batch_completion_times(durations, jobs=jobs))
    detailed = detailed_completions(durations, jobs=jobs)
    np.testing.assert_allclose(batch, detailed, rtol=1e-9, atol=1e-9)


def test_zero_duration_tasks_dispatch_limited():
    durations = np.zeros(100)
    times = batch_completion_times(durations, jobs=256, dispatch_rate=470.0)
    # Pure dispatch pacing: one task every 1/470 s.
    gaps = np.diff(np.sort(times))
    np.testing.assert_allclose(gaps, 1.0 / 470.0, rtol=1e-9)


def test_fast_path_equals_heap_path():
    rng = np.random.default_rng(9)
    durations = rng.uniform(0.0, 0.01, size=500)
    # jobs huge -> fast path; jobs just-enough -> heap path; same answer.
    fast = batch_completion_times(durations, jobs=100_000)
    slow = batch_completion_times(np.copy(durations), jobs=30)
    # With 30 slots and ~5 concurrent tasks max, slots never bind either.
    np.testing.assert_allclose(np.sort(fast), np.sort(slow), rtol=1e-12)


def test_start_offset_shifts_everything():
    durations = np.full(10, 0.1)
    a = batch_completion_times(durations, jobs=4, start=0.0)
    b = batch_completion_times(durations, jobs=4, start=100.0)
    np.testing.assert_allclose(b - a, 100.0)


def test_makespan_is_max():
    durations = np.array([0.1, 0.5, 0.2])
    times = batch_completion_times(durations, jobs=2)
    assert batch_makespan(durations, jobs=2) == pytest.approx(times.max())


def test_empty_batch():
    assert batch_makespan(np.array([]), jobs=4, start=3.0) == 3.0


def test_validation():
    with pytest.raises(ValueError):
        batch_completion_times(np.zeros((2, 2)), jobs=1)
    with pytest.raises(ValueError):
        batch_completion_times(np.zeros(3), jobs=0)
