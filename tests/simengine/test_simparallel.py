"""The simulated engine: dispatch rates, slots, GPU isolation, containers."""

import pytest

from repro.cluster import FRONTIER, PERLMUTTER_CPU, SimMachine
from repro.containers import PODMAN_HPC, SHIFTER
from repro.errors import SimulationError
from repro.sim import Environment
from repro.simengine import SimParallel, SimTask


def machine(spec=PERLMUTTER_CPU, seed=0, with_lustre=False):
    env = Environment()
    return env, SimMachine(env, spec, seed=seed, with_lustre=with_lustre)


def launch_rate(results):
    launches = sorted(r.launch_time for r in results)
    span = launches[-1] - launches[0]
    return (len(launches) - 1) / span if span > 0 else float("inf")


def test_all_tasks_complete_with_results():
    env, m = machine()
    inst = SimParallel(m.node(0), jobs=16)
    proc = inst.run([SimTask(duration=0.01) for _ in range(50)])
    results = env.run(until=proc)
    assert len(results) == 50
    assert all(r.ok for r in results)
    assert m.node(0).tasks_completed == 50


def test_single_instance_rate_approx_470():
    """Fig. 3: one instance launches ~470 processes/s."""
    env, m = machine()
    inst = SimParallel(m.node(0), jobs=256)
    proc = inst.run([SimTask(duration=0.0) for _ in range(2000)])
    results = env.run(until=proc)
    assert launch_rate(results) == pytest.approx(470, rel=0.05)


def test_jobs_cap_respected():
    env, m = machine()
    node = m.node(0)
    inst = SimParallel(node, jobs=4)
    proc = inst.run([SimTask(duration=1.0) for _ in range(12)])
    results = env.run(until=proc)
    # With -j4 and 1 s tasks dispatched at 470/s, tasks finish in waves of 4.
    slots = {r.slot for r in results}
    assert slots == {1, 2, 3, 4}
    # Concurrency never exceeded 4: total makespan >= 3 waves of 1 s.
    assert env.now >= 3.0


def test_slot_numbers_reused_lowest_first():
    env, m = machine()
    inst = SimParallel(m.node(0), jobs=2)
    proc = inst.run([SimTask(duration=0.1) for _ in range(6)])
    results = env.run(until=proc)
    assert {r.slot for r in results} == {1, 2}


def test_task_duration_respected():
    env, m = machine()
    inst = SimParallel(m.node(0), jobs=1)
    proc = inst.run([SimTask(duration=5.0)])
    results = env.run(until=proc)
    r = results[0]
    assert r.end_time - r.start_time == pytest.approx(5.0)


def test_invalid_jobs():
    env, m = machine()
    with pytest.raises(SimulationError):
        SimParallel(m.node(0), jobs=0)


# ------------------------------------------------------------ multi-instance
def test_two_instances_roughly_double_rate():
    env, m = machine()
    node = m.node(0)
    tasks = [SimTask(duration=0.0) for _ in range(1500)]
    procs = [SimParallel(node, jobs=128, name=f"p{i}").run(list(tasks)) for i in range(2)]
    all_results = []
    for p in procs:
        all_results.extend(env.run(until=p))
    assert launch_rate(all_results) == pytest.approx(940, rel=0.08)


def test_many_instances_hit_fork_ceiling_6400():
    """Fig. 3: aggregate rate saturates ~6,400/s."""
    env, m = machine()
    node = m.node(0)
    n_inst = 32  # 32 * 470 >> 6400: node fork path is the bottleneck
    procs = [
        SimParallel(node, jobs=8, name=f"p{i}").run(
            [SimTask(duration=0.0) for _ in range(400)]
        )
        for i in range(n_inst)
    ]
    all_results = []
    for p in procs:
        all_results.extend(env.run(until=p))
    assert launch_rate(all_results) == pytest.approx(6400, rel=0.05)


# ----------------------------------------------------------------- containers
def test_shifter_rate_capped_at_5200():
    env, m = machine()
    node = m.node(0)
    procs = [
        SimParallel(node, jobs=8, runtime=SHIFTER, name=f"p{i}").run(
            [SimTask(duration=0.0) for _ in range(300)]
        )
        for i in range(32)
    ]
    all_results = []
    for p in procs:
        all_results.extend(env.run(until=p))
    assert launch_rate(all_results) == pytest.approx(5200, rel=0.05)


def test_podman_rate_capped_at_65():
    env, m = machine()
    node = m.node(0)
    procs = [
        SimParallel(node, jobs=8, runtime=PODMAN_HPC, name=f"p{i}").run(
            [SimTask(duration=0.0) for _ in range(40)]
        )
        for i in range(8)
    ]
    all_results = []
    for p in procs:
        all_results.extend(env.run(until=p))
    ok = [r for r in all_results if r.ok]
    assert launch_rate(ok) == pytest.approx(65, rel=0.10)


def test_podman_failures_recorded_at_scale():
    env, m = machine(seed=2)
    node = m.node(0)
    procs = [
        SimParallel(node, jobs=32, runtime=PODMAN_HPC, name=f"p{i}").run(
            [SimTask(duration=0.0) for _ in range(100)]
        )
        for i in range(8)
    ]
    all_results = []
    for p in procs:
        all_results.extend(env.run(until=p))
    failed = [r for r in all_results if not r.ok]
    assert failed  # reliability issues appear under concurrency
    assert node.launch_failures  # counted by mode
    assert set(node.launch_failures) <= {
        "user_namespace", "db_lock", "setgid", "tmpdir",
    }


# ------------------------------------------------------------------- GPUs
def test_gpu_isolation_assigns_unique_devices():
    env, m = machine(spec=FRONTIER)
    node = m.node(0)
    inst = SimParallel(node, jobs=8, gpu_isolation=True)
    proc = inst.run([SimTask(duration=1.0, gpu=True) for _ in range(24)])
    results = env.run(until=proc)
    assert all(r.ok for r in results)
    assert {r.gpu_index for r in results} == set(range(8))
    # Every device did exactly 3 tasks.
    assert [d.tasks_completed for d in node.gpus.devices] == [3] * 8


def test_gpu_isolation_rejects_oversized_j():
    env, m = machine(spec=FRONTIER)
    with pytest.raises(SimulationError):
        SimParallel(m.node(0), jobs=9, gpu_isolation=True)


def test_non_gpu_tasks_skip_devices():
    env, m = machine(spec=FRONTIER)
    node = m.node(0)
    inst = SimParallel(node, jobs=8, gpu_isolation=True)
    proc = inst.run([SimTask(duration=0.1, gpu=False) for _ in range(8)])
    results = env.run(until=proc)
    assert all(r.gpu_index is None for r in results)
    assert all(d.tasks_completed == 0 for d in node.gpus.devices)


# -------------------------------------------------------------------- I/O
def test_nvme_write_adds_time():
    env, m = machine(spec=FRONTIER)
    node = m.node(0)
    inst = SimParallel(node, jobs=1)
    nbytes = int(node.spec.nvme_write_bw)  # exactly 1 s of writing
    proc = inst.run([SimTask(duration=0.0, nvme_write=nbytes)])
    results = env.run(until=proc)
    r = results[0]
    assert r.end_time - r.start_time == pytest.approx(1.0, rel=0.01)


def test_lustre_required_when_task_touches_it():
    env, m = machine(spec=FRONTIER, with_lustre=False)
    inst = SimParallel(m.node(0), jobs=1)
    proc = inst.run([SimTask(duration=0.0, lustre_write=100)])
    with pytest.raises(SimulationError):
        env.run(until=proc)


def test_lustre_write_through_shared_link():
    env = Environment()
    m = SimMachine(env, FRONTIER, with_lustre=True)
    node = m.node(0)
    inst = SimParallel(node, jobs=1)
    proc = inst.run([SimTask(duration=0.0, lustre_write=10**9)])
    results = env.run(until=proc)
    assert results[0].ok
    assert m.lustre.n_writes == 1


def test_monitor_records_launch_events():
    from repro.sim import Monitor

    env, m = machine()
    mon = Monitor()
    inst = SimParallel(m.node(0), jobs=8, name="p0", monitor=mon)
    proc = inst.run([SimTask(duration=0.0) for _ in range(25)])
    env.run(until=proc)
    assert mon.count("p0:launches") == 25
    times = mon.times("p0:launches")
    assert (times[1:] >= times[:-1]).all()  # recorded in time order
