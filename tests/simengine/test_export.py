"""Exporting simulated results to real-tool formats."""

from repro.cluster import PERLMUTTER_CPU, SimMachine
from repro.core.joblog import read_joblog
from repro.sim import Environment
from repro.simengine import SimParallel, SimTask, to_profile, write_joblog


def run_sim(n=20, fail_prob=0.0, jobs=8):
    env = Environment()
    m = SimMachine(env, PERLMUTTER_CPU, seed=1, with_lustre=False)
    inst = SimParallel(m.node(0), jobs=jobs)
    proc = inst.run([SimTask(duration=0.05, fail_prob=fail_prob) for _ in range(n)])
    return env.run(until=proc)


def test_joblog_readable_by_core_parser(tmp_path):
    results = run_sim()
    path = str(tmp_path / "sim.joblog")
    write_joblog(path, results, command="payload.sh")
    entries = read_joblog(path)
    assert len(entries) == 20
    assert all(e.ok for e in entries)
    assert entries[0].command == "payload.sh"
    assert [e.seq for e in entries] == sorted(e.seq for e in entries)


def test_joblog_records_failures_with_mode(tmp_path):
    results = run_sim(n=60, fail_prob=0.5)
    path = str(tmp_path / "sim.joblog")
    write_joblog(path, results)
    entries = read_joblog(path)
    failed = [e for e in entries if not e.ok]
    assert failed
    assert all("[task_error]" in e.command for e in failed)


def test_to_profile_reflects_slot_bound():
    results = run_sim(n=40, jobs=4)
    profile = to_profile(results)
    assert profile.n_jobs == 40
    assert profile.peak_concurrency <= 4
    assert profile.speedup_vs_serial > 1.5


def test_to_profile_ignores_failures():
    results = run_sim(n=40, fail_prob=0.5)
    profile = to_profile(results)
    assert profile.n_jobs == sum(1 for r in results if r.ok)
