"""Failure injection and --retries in the simulated engine."""

import pytest

from repro.cluster import FRONTIER, PERLMUTTER_CPU, SimMachine
from repro.containers import PODMAN_HPC
from repro.errors import SimulationError
from repro.sim import Environment
from repro.simengine import SimParallel, SimTask


def machine(seed=0):
    env = Environment()
    return env, SimMachine(env, PERLMUTTER_CPU, seed=seed, with_lustre=False)


def test_fail_prob_validation():
    with pytest.raises(ValueError):
        SimTask(duration=0.1, fail_prob=1.5)
    with pytest.raises(ValueError):
        SimTask(duration=0.1, fail_prob=-0.1)


def test_retries_validation():
    env, m = machine()
    with pytest.raises(SimulationError):
        SimParallel(m.node(0), jobs=1, retries=-1)


def test_injected_failures_recorded_without_retries():
    env, m = machine(seed=1)
    inst = SimParallel(m.node(0), jobs=16)
    proc = inst.run([SimTask(duration=0.01, fail_prob=0.5) for _ in range(200)])
    results = env.run(until=proc)
    failed = [r for r in results if not r.ok]
    assert len(results) == 200
    assert 50 < len(failed) < 150  # ~50% fail
    assert all(r.failure_mode == "task_error" for r in failed)
    assert all(r.attempt == 1 for r in results)


def test_retries_recover_most_failures():
    env, m = machine(seed=2)
    inst = SimParallel(m.node(0), jobs=16, retries=5)
    proc = inst.run([SimTask(duration=0.01, fail_prob=0.3) for _ in range(150)])
    results = env.run(until=proc)
    assert len(results) == 150
    ok = [r for r in results if r.ok]
    # P(5 consecutive failures) = 0.3^5 ~ 0.24%; essentially all succeed.
    assert len(ok) >= 148
    assert any(r.attempt > 1 for r in ok)  # retries actually happened


def test_retries_bounded_by_total_attempts():
    env, m = machine(seed=3)
    inst = SimParallel(m.node(0), jobs=4, retries=3)
    proc = inst.run([SimTask(duration=0.0, fail_prob=1.0) for _ in range(10)])
    results = env.run(until=proc)
    assert all(not r.ok for r in results)
    assert all(r.attempt == 3 for r in results)  # exactly 3 attempts each


def test_retries_zero_and_one_mean_run_once():
    for retries in (0, 1):
        env, m = machine(seed=4)
        inst = SimParallel(m.node(0), jobs=4, retries=retries)
        proc = inst.run([SimTask(duration=0.0, fail_prob=1.0) for _ in range(5)])
        results = env.run(until=proc)
        assert all(r.attempt == 1 and not r.ok for r in results)


def test_container_launch_failures_also_retried():
    env, m = machine(seed=5)
    node = m.node(0)
    inst = SimParallel(node, jobs=64, runtime=PODMAN_HPC, retries=4)
    proc = inst.run([SimTask(duration=0.0) for _ in range(300)])
    results = env.run(until=proc)
    assert len(results) == 300
    # Launch failures occurred (counted on the node) yet retries recovered
    # nearly everything.
    assert sum(node.launch_failures.values()) > 0
    assert sum(1 for r in results if r.ok) >= 295


def test_gpu_released_on_injected_failure():
    env = Environment()
    m = SimMachine(env, FRONTIER, seed=6, with_lustre=False)
    node = m.node(0)
    inst = SimParallel(node, jobs=8, gpu_isolation=True, retries=3)
    proc = inst.run(
        [SimTask(duration=0.05, gpu=True, fail_prob=0.4) for _ in range(40)]
    )
    results = env.run(until=proc)
    assert len(results) == 40
    assert node.gpus.busy_count == 0  # every device released


def test_makespan_grows_with_retries():
    def run(retries):
        env, m = machine(seed=7)
        inst = SimParallel(m.node(0), jobs=2, retries=retries)
        proc = inst.run([SimTask(duration=0.2, fail_prob=0.5) for _ in range(30)])
        env.run(until=proc)
        return env.now

    assert run(4) > run(1)  # retrying costs wall-clock but saves the work
