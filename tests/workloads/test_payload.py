"""The Fig. 1 payload task."""

import numpy as np

from repro import Parallel
from repro.workloads.payload import (
    PAYLOAD_MEAN_S,
    PAYLOAD_SHELL,
    payload,
    payload_duration_sampler,
)


def test_payload_format():
    out = payload("tag42")
    host, ts, tag = out.split()
    assert tag == "tag42"
    assert float(ts) > 0


def test_payload_without_tag():
    assert len(payload().split()) == 2


def test_payload_shell_form_runs_for_real():
    summary = Parallel(PAYLOAD_SHELL, jobs=2).run(["a", "b"])
    assert summary.ok
    for r in summary.results:
        parts = r.stdout.split()
        assert len(parts) == 3
        float(parts[1])  # timestamp parses


def test_duration_sampler_statistics():
    rng = np.random.default_rng(0)
    d = payload_duration_sampler(rng, 20_000)
    assert (d > 0).all()
    assert abs(d.mean() - PAYLOAD_MEAN_S) / PAYLOAD_MEAN_S < 0.05
    assert d.max() < 1.0  # no pathological outliers from the model itself
