"""Task-duration generators."""

import numpy as np
import pytest

from repro.workloads.generator import (
    bimodal,
    constant,
    lognormal,
    uniform,
    with_stragglers,
)


def rng():
    return np.random.default_rng(0)


def test_constant():
    d = constant(2.5)(rng(), 10)
    assert (d == 2.5).all()
    with pytest.raises(ValueError):
        constant(-1)


def test_uniform_bounds():
    d = uniform(1.0, 3.0)(rng(), 10_000)
    assert d.min() >= 1.0 and d.max() <= 3.0
    assert d.mean() == pytest.approx(2.0, rel=0.05)
    with pytest.raises(ValueError):
        uniform(3.0, 1.0)


def test_lognormal_mean_matches():
    d = lognormal(10.0, sigma=0.5)(rng(), 50_000)
    assert d.mean() == pytest.approx(10.0, rel=0.05)
    assert (d > 0).all()
    with pytest.raises(ValueError):
        lognormal(0.0)


def test_bimodal_mix_fraction():
    d = bimodal(1.0, 100.0, long_fraction=0.2)(rng(), 20_000)
    assert set(np.unique(d)) == {1.0, 100.0}
    assert (d == 100.0).mean() == pytest.approx(0.2, abs=0.02)
    with pytest.raises(ValueError):
        bimodal(1.0, 2.0, long_fraction=1.5)


def test_with_stragglers_tail():
    base = constant(1.0)
    d = with_stragglers(base, prob=0.05, factor=20.0)(rng(), 20_000)
    assert set(np.unique(d)) == {1.0, 20.0}
    assert (d == 20.0).mean() == pytest.approx(0.05, abs=0.01)
    with pytest.raises(ValueError):
        with_stragglers(base, factor=0.5)


def test_samplers_deterministic_given_rng_state():
    a = lognormal(5.0)(np.random.default_rng(7), 100)
    b = lognormal(5.0)(np.random.default_rng(7), 100)
    np.testing.assert_array_equal(a, b)


def test_samplers_compose_with_batch_model():
    from repro.simengine import batch_makespan

    d = with_stragglers(bimodal(0.1, 1.0), prob=0.02, factor=5.0)(rng(), 256)
    makespan = batch_makespan(d, jobs=128)
    assert makespan >= d.max()
