"""Fetch-process workflow: images, metric, queue file, tail -f."""

import threading

import numpy as np
import pytest

from repro.workloads.fetchprocess import (
    REGIONS,
    FileQueue,
    brightness_metric,
    fetch_batch,
    follow,
    process_batch,
    synth_region_image,
)


def test_eight_regions_match_paper():
    assert REGIONS == ("cgl", "ne", "nr", "se", "sp", "sr", "pr", "pnw")


def test_synth_image_deterministic_and_bounded():
    a = synth_region_image("ne", 1000)
    b = synth_region_image("ne", 1000)
    assert np.array_equal(a, b)
    assert a.shape == (64, 64)
    assert a.min() >= 0.0 and a.max() <= 1.0


def test_synth_image_varies_by_region_and_time():
    assert not np.array_equal(synth_region_image("ne", 1), synth_region_image("sp", 1))
    assert not np.array_equal(synth_region_image("ne", 1), synth_region_image("ne", 2))


def test_brightness_metric_range_and_masking():
    assert brightness_metric(np.zeros((8, 8))) == 0.0
    # All-white image: everything masked to 0.
    assert brightness_metric(np.ones((8, 8))) == 0.0
    # Half grey: mean 0.25 -> 25.
    img = np.full((8, 8), 0.5)
    assert brightness_metric(img) == pytest.approx(50.0)


def test_fetch_batch_writes_all_regions(tmp_path):
    paths = fetch_batch(str(tmp_path), ts=123, jobs=4)
    assert len(paths) == 8
    metrics = process_batch(str(tmp_path), "123")
    assert set(metrics) == set(REGIONS)
    assert all(0 <= v <= 100 for v in metrics.values())


def test_file_queue_appends_lines(tmp_path):
    q = FileQueue(str(tmp_path / "q.proc"))
    q.append("100")
    q.append("200")
    assert open(q.path).read().splitlines() == ["100", "200"]


def test_follow_reads_existing_then_new_lines(tmp_path):
    q = FileQueue(str(tmp_path / "q.proc"))
    q.append("1")
    done = threading.Event()
    got = []

    def consumer():
        for line in follow(q.path, poll_s=0.01, stop=done.is_set, timeout_s=10):
            got.append(line)

    t = threading.Thread(target=consumer)
    t.start()
    q.append("2")
    q.append("3")
    # Give the follower a moment to drain, then stop it.
    while len(got) < 3:
        pass
    done.set()
    t.join(timeout=5)
    assert not t.is_alive()
    assert got == ["1", "2", "3"]


def test_follow_timeout_safety(tmp_path):
    q = FileQueue(str(tmp_path / "q.proc"))
    gen = follow(q.path, poll_s=0.01, timeout_s=0.1)
    with pytest.raises(TimeoutError):
        next(gen)
