"""Darshan substrate: log format, analysis task, and the Fig. 7 pipeline."""

import json
import os

import numpy as np
import pytest

from repro.errors import ReproError
from repro.sim import Environment
from repro.storage import make_lustre, make_nvme
from repro.workloads.darshan import (
    DarshanPipelineConfig,
    DarshanRecord,
    aggregate_records,
    darshan_arch,
    generate_archive,
    generate_darshan_log,
    parse_darshan_log,
    run_staged_pipeline,
)


def test_log_roundtrip(tmp_path):
    path = str(tmp_path / "m.dsyn")
    written = generate_darshan_log(path, 3, np.random.default_rng(0), n_jobs=20)
    read = parse_darshan_log(path)
    assert read == written
    assert all(r.month == 3 for r in read)


def test_generate_rejects_bad_month(tmp_path):
    with pytest.raises(ReproError):
        generate_darshan_log(str(tmp_path / "x"), 13, np.random.default_rng(0))


def test_parse_rejects_wrong_header(tmp_path):
    p = tmp_path / "bad.dsyn"
    p.write_text("NOTDSYN\n")
    with pytest.raises(ReproError):
        parse_darshan_log(str(p))


def test_record_line_roundtrip():
    rec = DarshanRecord(1, "climate_sim", 2, 64, "POSIX", 100, 50, 7, 12.5)
    assert DarshanRecord.from_line(rec.to_line()) == rec


def test_record_malformed_line():
    with pytest.raises(ReproError):
        DarshanRecord.from_line("1\t2\t3")


def test_aggregate_totals():
    recs = [
        DarshanRecord(1, "a", 1, 1, "POSIX", 10, 5, 2, 1.0),
        DarshanRecord(2, "a", 1, 1, "MPIIO", 30, 10, 3, 1.0),
    ]
    agg = aggregate_records(recs)
    assert agg["bytes_read"] == 40
    assert agg["bytes_written"] == 15
    assert agg["files_opened"] == 5
    assert agg["top_module"] == "MPIIO"
    assert agg["read_write_ratio"] == pytest.approx(40 / 15)


def test_aggregate_empty():
    agg = aggregate_records([])
    assert agg["n_records"] == 0 and agg["top_module"] is None


def test_archive_generation(tmp_path):
    paths = generate_archive(str(tmp_path / "arch"), months=[1, 2], n_jobs=5)
    assert len(paths) == 2
    assert all(os.path.exists(p) for p in paths)


def test_darshan_arch_task(tmp_path):
    arch = str(tmp_path / "arch")
    out = str(tmp_path / "out")
    generate_archive(arch, months=[4], n_jobs=40, seed=1)
    out_path = darshan_arch("4", "0", arch, out)
    summary = json.load(open(out_path))
    assert summary["month"] == 4
    assert summary["app"] == "climate_sim"
    assert summary["n_records"] >= 0


def test_darshan_arch_bad_app(tmp_path):
    with pytest.raises(ReproError):
        darshan_arch("1", "9", str(tmp_path), str(tmp_path))


# ------------------------------------------------------------ Fig. 7 pipeline
def minutes(x):
    return x / 60.0


def run_pipeline(config=None):
    env = Environment()
    lustre = make_lustre(env)
    nvme = make_nvme(env)
    return run_staged_pipeline(env, lustre, nvme, config or DarshanPipelineConfig())


def test_pipeline_stage_times_match_paper():
    report = run_pipeline()
    stages_min = [minutes(t) for t in report.stage_times]
    # Stage 1 (Lustre) ~86 min; stages 2-5 (NVMe) ~68 min each.
    assert stages_min[0] == pytest.approx(86, rel=0.03)
    for t in stages_min[1:]:
        assert t == pytest.approx(68, rel=0.03)


def test_pipeline_total_and_improvement_match_paper():
    report = run_pipeline()
    assert minutes(report.total_time) == pytest.approx(358, rel=0.03)
    assert minutes(report.baseline_all_lustre) == pytest.approx(430, rel=0.03)
    assert report.improvement == pytest.approx(0.17, abs=0.02)


def test_pipeline_prefetch_hides_behind_processing():
    report = run_pipeline()
    # Every prefetch is shorter than an NVMe processing stage.
    assert all(p < min(report.stage_times[1:]) for p in report.prefetch_times)


def test_pipeline_only_one_direct_lustre_read_stage():
    report = run_pipeline()
    assert report.lustre_reads == 1


def test_pipeline_deletes_processed_datasets():
    env = Environment()
    lustre = make_lustre(env)
    nvme = make_nvme(env)
    run_staged_pipeline(env, lustre, nvme, DarshanPipelineConfig())
    # Only the last prefetched dataset may remain on NVMe.
    remaining = [e.path for e in nvme.list_files("/nvme/darshan/")]
    assert len(remaining) <= 1


def test_pipeline_single_dataset_degenerates():
    report = run_pipeline(DarshanPipelineConfig(n_datasets=1))
    assert len(report.stage_times) == 1
    assert report.prefetch_times == []


def test_pipeline_config_validation():
    with pytest.raises(ReproError):
        DarshanPipelineConfig(n_datasets=0)


def test_darshan_cli_via_shell_engine(tmp_path):
    """Drive darshan_cli with the real subprocess engine (Listing 5 shape)."""
    import sys

    from repro import Parallel
    from repro.workloads.darshan_cli import main as cli_main

    arch, out = str(tmp_path / "arch"), str(tmp_path / "out")
    generate_archive(arch, months=[1, 2], n_jobs=10, seed=5)
    # Direct CLI invocation.
    assert cli_main(["1", "0", "--archive", arch, "--out", out]) == 0
    # Through the shell engine, exactly as the paper runs it.
    cmd = (f"{sys.executable} -m repro.workloads.darshan_cli "
           f"--archive {arch} --out {out} {{1}} {{2}}")
    summary = Parallel(cmd, jobs=4).run_sources([["1", "2"], ["0", "1", "2"]])
    assert summary.ok and summary.n_succeeded == 6
    assert len(list((tmp_path / "out").glob("summary_*.json"))) == 6


def test_darshan_cli_error_paths(tmp_path):
    from repro.workloads.darshan_cli import main as cli_main

    code = cli_main(["1", "9", "--archive", str(tmp_path), "--out", str(tmp_path)])
    assert code == 1
