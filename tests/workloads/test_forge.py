"""FORGE curation pipeline."""

import pytest

from repro.workloads.forge import (
    RawArticle,
    clean_text,
    curate_article,
    curation_stats,
    extract_abstract,
    extract_body,
    is_english,
    synthetic_corpus,
)

ENGLISH_DOC = """Some Title

Abstract
This paper presents the measurement of the neutron flux in the detector
and the analysis of the results from the experiment with a model.

Introduction
The experiment was performed with the detector and the results are
presented in this paper for all of the measurements that were taken.
"""


def test_extract_abstract_basic():
    abstract = extract_abstract(ENGLISH_DOC)
    assert abstract is not None
    assert abstract.startswith("This paper presents")
    assert "Introduction" not in abstract


def test_extract_abstract_missing_returns_none():
    assert extract_abstract("No sections here at all.") is None


def test_extract_abstract_runs_to_end_without_section():
    text = "Abstract\nJust the abstract and nothing else."
    assert extract_abstract(text) == "Just the abstract and nothing else."


def test_extract_body():
    body = extract_body(ENGLISH_DOC)
    assert body.startswith("The experiment was performed")


def test_is_english_accepts_english():
    assert is_english(ENGLISH_DOC)


def test_is_english_rejects_cyrillic():
    assert not is_english("энергия нейтрон поток детектор плазма решётка " * 10)


def test_is_english_rejects_empty_and_tiny():
    assert not is_english("")
    assert not is_english("x y")
    assert not is_english("12345 67890 !!!")


def test_is_english_rejects_stopword_free_latin():
    assert not is_english("neutron flux detector plasma lattice quantum " * 10)


def test_clean_text_removes_control_chars():
    assert "\x07" not in clean_text("hello\x07world\x00!")


def test_clean_text_removes_latex():
    out = clean_text(r"the \alpha{x} flux $E$ of \beta neutrons")
    assert "\\" not in out and "{" not in out and "$" not in out
    assert "flux" in out


def test_clean_text_collapses_whitespace():
    assert clean_text("a    b\t\tc") == "a b c"
    assert clean_text("a\n\n\nb") == "a\nb"


def test_curate_article_happy_path():
    art = curate_article(RawArticle("d1", ENGLISH_DOC))
    assert art is not None
    assert art.doc_id == "d1"
    assert art.n_tokens > 10


def test_curate_drops_non_english():
    bad = RawArticle("d2", "энергия нейтрон поток детектор " * 20)
    assert curate_article(bad) is None


def test_curate_drops_missing_abstract():
    no_abs = RawArticle("d3", "Introduction\n" + "the of and to in " * 30)
    assert curate_article(no_abs) is None


def test_synthetic_corpus_deterministic():
    a = synthetic_corpus(50, seed=4)
    b = synthetic_corpus(50, seed=4)
    assert a == b
    assert len({x.doc_id for x in a}) == 50


def test_corpus_curation_rates_track_defect_injection():
    corpus = synthetic_corpus(400, seed=0, english_fraction=0.8, abstract_fraction=0.9)
    stats = curation_stats([curate_article(a) for a in corpus])
    # Expected kept rate ~ 0.8 * 0.9 = 0.72, within sampling noise.
    assert 0.55 <= stats["kept_rate"] <= 0.85
    assert stats["total_tokens"] > 0


def test_curation_stats_empty():
    s = curation_stats([])
    assert s["n_input"] == 0 and s["kept_rate"] == 0.0
