"""The toy Monte Carlo transport kernel (Celeritas stand-in)."""

import numpy as np
import pytest

from repro.workloads.celeritas import (
    TransportConfig,
    celeritas_duration_sampler,
    run_input_file,
    transport,
    write_input_file,
)


def test_particle_conservation():
    result = transport(TransportConfig(n_photons=20_000, seed=1))
    assert result.balance_ok


def test_deterministic_given_seed():
    a = transport(TransportConfig(n_photons=5000, seed=7))
    b = transport(TransportConfig(n_photons=5000, seed=7))
    assert a == b


def test_different_seeds_differ():
    a = transport(TransportConfig(n_photons=5000, seed=1))
    b = transport(TransportConfig(n_photons=5000, seed=2))
    assert a != b


def test_energy_deposition_bounded_by_source():
    cfg = TransportConfig(n_photons=10_000, initial_energy_mev=2.0, seed=3)
    result = transport(cfg)
    assert 0 < result.total_deposited < cfg.n_photons * cfg.initial_energy_mev


def test_deposition_profile_attenuates():
    """Exponential attenuation: front half of a thick absorbing slab
    deposits more than the back half."""
    cfg = TransportConfig(
        n_photons=50_000, n_slabs=40, sigma_total=2.0,
        absorption_fraction=0.8, seed=5,
    )
    result = transport(cfg)
    dep = np.array(result.deposition)
    assert dep[:20].sum() > 3 * dep[20:].sum()


def test_pure_absorber_no_scatter_escape_back_impossible():
    cfg = TransportConfig(n_photons=5000, absorption_fraction=1.0, seed=2)
    result = transport(cfg)
    # mu starts at +1 and never changes without scattering.
    assert result.n_escaped_back == 0
    assert result.n_killed == 0


def test_config_validation():
    with pytest.raises(ValueError):
        transport(TransportConfig(n_photons=0))
    with pytest.raises(ValueError):
        transport(TransportConfig(absorption_fraction=0.0))
    with pytest.raises(ValueError):
        transport(TransportConfig(sigma_total=-1))


def test_input_file_roundtrip(tmp_path):
    cfg = TransportConfig(n_photons=2000, seed=9)
    inp = str(tmp_path / "run1.inp.json")
    write_input_file(inp, cfg)
    result = run_input_file(inp)
    assert result.balance_ok
    assert (tmp_path / "run1.inp.out").exists()


def test_duration_sampler_tight_variance():
    """Fig. 2: task-duration spread must be seconds, not minutes."""
    rng = np.random.default_rng(0)
    d = celeritas_duration_sampler(rng, 1000)
    assert d.std() < 5.0
    assert abs(d.mean() - 180.0) < 1.0
    assert (d > 0).all()


def test_energy_conservation_exact():
    cfg = TransportConfig(n_photons=20_000, initial_energy_mev=1.5, seed=11)
    result = transport(cfg)
    assert result.energy_balance_ok(cfg.n_photons * cfg.initial_energy_mev)


def test_energy_ledger_components_nonnegative():
    result = transport(TransportConfig(n_photons=5000, seed=12))
    assert result.escaped_energy >= 0.0
    assert result.killed_energy >= 0.0
