"""MinHash near-duplicate detection for FORGE curation."""

import numpy as np
import pytest

from repro.workloads.forge import RawArticle, curate_corpus, synthetic_corpus
from repro.workloads.forge_dedup import (
    deduplicate,
    estimated_jaccard,
    find_duplicate_pairs,
    jaccard,
    minhash_signature,
    shingles,
)

DOC_A = "the neutron flux in the detector was measured with high precision " * 5
DOC_A2 = DOC_A + "and one extra trailing sentence appears here"
DOC_B = "completely different content about plasma turbulence simulations " * 5


# ---------------------------------------------------------------- shingles
def test_shingles_basic():
    s = shingles("a b c d", n=2)
    assert s == {"a b", "b c", "c d"}


def test_shingles_short_text():
    assert shingles("one two", n=3) == {"one two"}
    assert shingles("", n=3) == set()


def test_shingles_validation():
    with pytest.raises(ValueError):
        shingles("x", n=0)


# ----------------------------------------------------------------- jaccard
def test_jaccard_exact_cases():
    a, b = {"x", "y"}, {"y", "z"}
    assert jaccard(a, a) == 1.0
    assert jaccard(a, b) == pytest.approx(1 / 3)
    assert jaccard(set(), set()) == 1.0
    assert jaccard(a, set()) == 0.0


def test_minhash_estimates_jaccard():
    sa, sb = shingles(DOC_A), shingles(DOC_A2)
    true = jaccard(sa, sb)
    est = estimated_jaccard(
        minhash_signature(sa, k=256), minhash_signature(sb, k=256)
    )
    assert est == pytest.approx(true, abs=0.12)


def test_identical_docs_have_identical_signatures():
    s = shingles(DOC_A)
    np.testing.assert_array_equal(minhash_signature(s), minhash_signature(s))


def test_unrelated_docs_low_similarity():
    est = estimated_jaccard(
        minhash_signature(shingles(DOC_A)), minhash_signature(shingles(DOC_B))
    )
    assert est < 0.2


def test_signature_validation():
    with pytest.raises(ValueError):
        minhash_signature({"x"}, k=0)
    with pytest.raises(ValueError):
        estimated_jaccard(np.zeros(4, dtype=np.int64), np.zeros(8, dtype=np.int64))


def test_empty_document_never_similar():
    empty = minhash_signature(set())
    other = minhash_signature(shingles(DOC_A))
    assert estimated_jaccard(empty, other) == 0.0


# --------------------------------------------------------------------- LSH
def test_find_duplicate_pairs_catches_near_dupes():
    sigs = [
        minhash_signature(shingles(t))
        for t in (DOC_A, DOC_B, DOC_A2, DOC_B + " tail")
    ]
    pairs = find_duplicate_pairs(sigs, threshold=0.7)
    assert (0, 2) in pairs  # A ~ A2
    assert (0, 1) not in pairs


def test_find_duplicate_pairs_bands_validation():
    sigs = [minhash_signature(shingles(DOC_A), k=64)]
    with pytest.raises(ValueError):
        find_duplicate_pairs(sigs, bands=7)  # 7 does not divide 64


def test_find_duplicate_pairs_empty():
    assert find_duplicate_pairs([]) == []


# ------------------------------------------------------------- deduplicate
def test_deduplicate_keeps_earliest():
    report = deduplicate([DOC_A, DOC_B, DOC_A2], threshold=0.7)
    assert report.kept_indices == (0, 1)
    assert report.dropped_indices == (2,)


def test_deduplicate_no_dupes_keeps_all():
    report = deduplicate([DOC_A, DOC_B], threshold=0.7)
    assert report.kept_indices == (0, 1)
    assert report.duplicate_pairs == ()


def test_deduplicate_deterministic():
    docs = [DOC_A, DOC_A2, DOC_B]
    a = deduplicate(docs, seed=5)
    b = deduplicate(docs, seed=5)
    assert a == b


# ------------------------------------------------------------ curate_corpus
def test_curate_corpus_end_to_end():
    corpus = synthetic_corpus(120, seed=1)
    curated = curate_corpus(corpus, jobs=8, dedup=True)
    assert 0 < len(curated) <= 120
    assert all(c.abstract and c.body for c in curated)


def test_curate_corpus_dedup_drops_injected_duplicates():
    base = synthetic_corpus(40, seed=2, english_fraction=1.0, abstract_fraction=1.0,
                            noise_fraction=0.0)
    # Inject exact copies under new ids.
    dupes = [RawArticle(doc_id=f"copy{i}", text=base[i].text) for i in range(5)]
    with_dupes = base + dupes
    kept = curate_corpus(with_dupes, jobs=4, dedup=True)
    kept_no_dedup = curate_corpus(with_dupes, jobs=4, dedup=False)
    assert len(kept) <= len(kept_no_dedup) - 5
