"""Listing-1 sharding semantics (awk 'NR % NNODE == NODEID')."""

import pytest

from repro.driver import shard_block, shard_cyclic, shard_sizes
from repro.errors import ReproError


def test_cyclic_matches_awk_one_based_nr():
    lines = [f"l{i}" for i in range(1, 9)]  # NR = 1..8
    # awk with NNODE=4: NODEID = NR % 4
    assert list(shard_cyclic(lines, 4, 1)) == ["l1", "l5"]
    assert list(shard_cyclic(lines, 4, 2)) == ["l2", "l6"]
    assert list(shard_cyclic(lines, 4, 3)) == ["l3", "l7"]
    assert list(shard_cyclic(lines, 4, 0)) == ["l4", "l8"]


def test_cyclic_partition_is_complete_and_disjoint():
    lines = list(range(103))
    shards = [list(shard_cyclic(lines, 7, i)) for i in range(7)]
    flat = [x for s in shards for x in s]
    assert sorted(flat) == lines
    assert len(flat) == len(set(flat))


def test_cyclic_single_node_gets_everything():
    assert list(shard_cyclic("abc", 1, 0)) == ["a", "b", "c"]


def test_cyclic_streams_lazily():
    def unbounded():
        i = 0
        while True:
            yield i
            i += 1

    gen = shard_cyclic(unbounded(), 10, 3)
    assert [next(gen) for _ in range(3)] == [2, 12, 22]  # NR=3,13,23


def test_cyclic_validation():
    with pytest.raises(ReproError):
        list(shard_cyclic([1], 0, 0))
    with pytest.raises(ReproError):
        list(shard_cyclic([1], 4, 4))


def test_block_partition_complete():
    items = list(range(10))
    shards = [shard_block(items, 3, i) for i in range(3)]
    assert shards == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]


def test_block_even_split():
    items = list(range(8))
    shards = [shard_block(items, 4, i) for i in range(4)]
    assert [len(s) for s in shards] == [2, 2, 2, 2]


def test_shard_sizes_balanced():
    sizes = shard_sizes(1_152_000, 9000)  # Fig. 1's 9,000-node run
    assert sum(sizes) == 1_152_000
    assert max(sizes) - min(sizes) <= 1
    assert sizes[0] == 128  # 128 tasks per node


def test_shard_sizes_validation():
    with pytest.raises(ReproError):
        shard_sizes(-1, 4)
