"""Multi-node simulated runs: detailed vs batch fidelity and basic shape."""

import numpy as np
import pytest

from repro.cluster import FRONTIER, MachineSpec, SimMachine
from repro.driver import run_multinode, run_multinode_batch
from repro.sim import Environment
from repro.simengine import SimTask
from repro.slurm import Allocation

# A Frontier variant with no stochastic delays, for exact comparisons.
FRONTIER_CALM = MachineSpec(
    name="frontier-calm",
    node=FRONTIER.node,
    total_nodes=64,
    alloc_delay_mean=1e-9,
    straggler_prob=0.0,
)


def test_detailed_multinode_runs_all_tasks():
    env = Environment()
    machine = SimMachine(env, FRONTIER_CALM, with_lustre=False)
    alloc = Allocation(machine, 4)
    inputs = list(range(4 * 16))
    run = run_multinode(
        alloc, inputs, lambda item, nid: SimTask(duration=0.01), jobs_per_node=16
    )
    assert run.n_tasks == 64
    assert run.makespan > 0
    assert len(run.node_makespans) == 4


def test_detailed_distributes_across_all_nodes():
    env = Environment()
    machine = SimMachine(env, FRONTIER_CALM, with_lustre=False)
    alloc = Allocation(machine, 4)
    run = run_multinode(
        alloc, list(range(40)), lambda i, n: SimTask(duration=0.0), jobs_per_node=8
    )
    nodes_used = {r.node for r in run.results}
    assert len(nodes_used) == 4


def test_batch_matches_detailed_on_calm_machine():
    durations = np.full(32, 0.05)

    env1 = Environment()
    m1 = SimMachine(env1, FRONTIER_CALM, with_lustre=False, seed=3)
    a1 = Allocation(m1, 2)
    detailed = run_multinode(
        a1, list(range(64)),
        lambda item, nid: SimTask(duration=0.05),
        jobs_per_node=128,
    )

    env2 = Environment()
    m2 = SimMachine(env2, FRONTIER_CALM, with_lustre=False, seed=3)
    a2 = Allocation(m2, 2)
    batch = run_multinode_batch(
        a2, tasks_per_node=32,
        duration_sampler=lambda rng, n: np.full(n, 0.05),
        jobs_per_node=128,
    )
    assert batch.n_tasks == detailed.n_tasks
    # Same allocation seed -> same ready times -> same completion times.
    np.testing.assert_allclose(
        np.sort(batch.completion_times),
        np.sort(detailed.completion_times),
        rtol=1e-9,
    )


def test_batch_stage_out_adds_lustre_transfer():
    env = Environment()
    machine = SimMachine(env, FRONTIER_CALM, with_lustre=True, seed=1)
    alloc = Allocation(machine, 2)
    run = run_multinode_batch(
        alloc, tasks_per_node=8,
        duration_sampler=lambda rng, n: np.zeros(n),
        jobs_per_node=8,
        stage_out_bytes=10**9,
        nvme_write_bytes=10**6,
    )
    assert machine.lustre.n_writes == 2
    assert run.makespan >= run.completion_times.max()


def test_stragglers_extend_makespan():
    noisy = MachineSpec(
        name="noisy", node=FRONTIER.node, total_nodes=64,
        alloc_delay_mean=1.0, straggler_prob=0.5, straggler_scale=100.0,
    )
    env = Environment()
    machine = SimMachine(env, noisy, with_lustre=False, seed=0)
    alloc = Allocation(machine, 32)
    run = run_multinode_batch(
        alloc, tasks_per_node=4,
        duration_sampler=lambda rng, n: np.zeros(n),
        jobs_per_node=4,
    )
    assert run.makespan > 50.0  # dominated by straggler delays
