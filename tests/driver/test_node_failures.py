"""Node-failure injection and rebalancing in multi-node batch runs."""

import numpy as np
import pytest

from repro.cluster import FRONTIER, MachineSpec, SimMachine
from repro.driver import run_multinode_batch
from repro.errors import SimulationError
from repro.sim import Environment
from repro.slurm import Allocation

CALM = MachineSpec(
    name="calm", node=FRONTIER.node, total_nodes=64,
    alloc_delay_mean=1e-9, straggler_prob=0.0,
)


def run(n_nodes=8, tasks=32, failure=0.0, rebalance=True, seed=0):
    env = Environment()
    machine = SimMachine(env, CALM, with_lustre=False, seed=seed)
    alloc = Allocation(machine, n_nodes)
    return run_multinode_batch(
        alloc,
        tasks_per_node=tasks,
        duration_sampler=lambda rng, n: np.full(n, 0.2),
        jobs_per_node=8,
        node_failure_prob=failure,
        rebalance=rebalance,
    )


def test_no_failures_all_tasks_complete():
    result = run(failure=0.0)
    assert result.n_tasks == 8 * 32


def test_failures_without_rebalance_lose_tasks():
    # Certain failure on every node: each node loses its post-crash tail.
    result = run(failure=1.0, rebalance=False, seed=3)
    assert result.n_tasks < 8 * 32


def test_rebalance_recovers_every_task():
    lossy = run(failure=0.5, rebalance=False, seed=4)
    recovered = run(failure=0.5, rebalance=True, seed=4)
    assert lossy.n_tasks < 8 * 32
    assert recovered.n_tasks == 8 * 32


def test_rebalance_costs_wall_clock():
    clean = run(failure=0.0, seed=5)
    recovered = run(failure=0.5, rebalance=True, seed=5)
    assert recovered.makespan > clean.makespan


def test_all_nodes_failing_is_an_error():
    with pytest.raises(SimulationError):
        run(failure=1.0, rebalance=True, seed=6)


def test_failure_draws_deterministic_per_seed():
    a = run(failure=0.5, rebalance=True, seed=7)
    b = run(failure=0.5, rebalance=True, seed=7)
    np.testing.assert_array_equal(
        np.sort(a.completion_times), np.sort(b.completion_times)
    )
