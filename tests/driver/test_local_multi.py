"""Local multi-instance sharded runs (Listing 1 on one machine)."""

import pytest

from repro.core.engine import Parallel
from repro.driver import run_local_sharded
from repro.errors import ReproError


def test_all_inputs_processed_once():
    run = run_local_sharded(lambda x: x, list(range(30)), n_instances=4,
                            jobs_per_instance=4)
    assert run.ok
    assert run.n_succeeded == 30
    values = sorted(int(r.value) for r in run.results)
    assert values == list(range(30))


def test_shell_command_across_instances():
    run = run_local_sharded("echo {}", list("abcdef"), n_instances=3,
                            jobs_per_instance=2)
    assert run.ok
    outs = sorted(r.stdout.strip() for r in run.results)
    assert outs == list("abcdef")


def test_failures_reported_not_raised():
    run = run_local_sharded("exit {}", ["0", "1", "0", "1"], n_instances=2,
                            jobs_per_instance=2)
    assert not run.ok
    assert run.n_failed == 2
    assert run.n_succeeded == 2


def test_more_instances_than_inputs():
    run = run_local_sharded(lambda x: x, ["only"], n_instances=8,
                            jobs_per_instance=1)
    assert run.ok and run.n_succeeded == 1


def test_engine_factory_override():
    seen = []

    def factory(instance):
        return Parallel(lambda x: seen.append((instance, x)), jobs=1)

    run = run_local_sharded(None, list(range(8)), n_instances=2,
                            engine_factory=factory)
    assert run.ok
    instances = {i for i, _ in seen}
    assert instances == {0, 1}


def test_validation():
    with pytest.raises(ReproError):
        run_local_sharded("echo {}", ["a"], n_instances=0)


def test_wall_time_and_rate_metrics():
    run = run_local_sharded("true # {}", list(range(24)), n_instances=3,
                            jobs_per_instance=4)
    assert run.wall_time > 0
    assert run.aggregate_launch_rate > 5


def test_memfree_throttle_blocks_until_memory_frees():
    import time

    values = iter([10, 10, 10**12])
    last = [10**12]

    def probe():
        last[0] = next(values, last[0])
        return last[0]

    from repro import Options, Parallel

    opts = Options(jobs=1, memfree=1024, memfree_probe=probe)
    start = time.time()
    summary = Parallel("echo {}", options=opts).run(["a"])
    assert summary.ok
    # Dispatch stalled until the third probe reported enough memory; the
    # exponential backoff waits 5 ms + 10 ms between probes before that.
    assert last[0] == 10**12
    assert time.time() - start >= 0.014
