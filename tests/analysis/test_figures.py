"""ASCII box-plot rendering."""

import numpy as np
import pytest

from repro.analysis import render_boxplot


def test_single_group_spans_scale():
    out = render_boxplot("T", {"g": np.array([0.0, 5.0, 10.0])}, width=21)
    lines = out.splitlines()
    assert lines[0] == "T"
    row = lines[3]
    assert row.strip().startswith("g")
    # whisker endpoints at the extremes of the scale
    bar = row.split("g ", 1)[1].split(" max")[0]
    assert bar[0] == "|" and bar.rstrip()[-1] == "|"
    assert "M" in bar


def test_median_marker_position_monotone():
    low = np.array([1.0, 2.0, 3.0])
    high = np.array([8.0, 9.0, 10.0])
    out = render_boxplot("T", {"lo": low, "hi": high}, width=40)
    rows = out.splitlines()[3:]
    pos_lo = rows[0].index("M")
    pos_hi = rows[1].index("M")
    assert pos_hi > pos_lo


def test_max_annotated():
    out = render_boxplot("T", {"a": np.array([2.0, 4.0])})
    assert "max 4.0" in out


def test_unit_in_scale_line():
    out = render_boxplot("T", {"a": np.array([1.0])}, unit="sec")
    assert "sec" in out.splitlines()[2]


def test_empty_groups_rejected():
    with pytest.raises(ValueError):
        render_boxplot("T", {})


def test_degenerate_constant_sample():
    out = render_boxplot("T", {"c": np.array([5.0, 5.0, 5.0])})
    assert "max 5.0" in out  # no division-by-zero on zero range
