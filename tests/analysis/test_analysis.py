"""Stats, metrics, and report rendering."""

import numpy as np
import pytest

from repro.analysis import (
    box_stats,
    format_seconds,
    full_utilization_task_floor,
    iqr,
    launch_rate,
    makespan,
    mb_per_s,
    render_series,
    render_table,
    speedup,
    trimmed_span,
)


def test_box_stats_five_numbers():
    s = box_stats(np.arange(1, 102, dtype=float))  # 1..101
    assert s.minimum == 1 and s.maximum == 101
    assert s.median == 51
    assert s.q1 == 26 and s.q3 == 76
    assert s.iqr == 50
    assert s.count == 101
    assert s.mean == pytest.approx(51)


def test_box_stats_row_keys():
    row = box_stats(np.array([1.0, 2.0, 3.0])).row()
    assert set(row) == {"n", "min", "p25", "median", "p75", "max", "mean"}


def test_box_stats_empty_rejected():
    with pytest.raises(ValueError):
        box_stats(np.array([]))


def test_iqr_and_trimmed_span():
    vals = np.arange(101, dtype=float)
    assert iqr(vals) == 50
    assert trimmed_span(vals, 5, 95) == 90


def test_launch_rate_basic():
    # 11 launches over 1 second -> 10/s.
    times = np.linspace(0, 1, 11)
    assert launch_rate(times) == pytest.approx(10.0)


def test_launch_rate_degenerate():
    assert launch_rate([5.0]) == float("inf")
    assert launch_rate([5.0, 5.0]) == float("inf")


def test_full_utilization_floor_paper_numbers():
    assert full_utilization_task_floor(256, 470.0) == pytest.approx(0.545, abs=0.001)
    assert full_utilization_task_floor(256, 6400.0) == pytest.approx(0.040)
    with pytest.raises(ValueError):
        full_utilization_task_floor(0, 1.0)


def test_speedup():
    assert speedup(200.0, 1.0) == 200.0
    with pytest.raises(ValueError):
        speedup(1.0, 0.0)


def test_mb_per_s():
    # 1e6 bytes in 1 s = 8 Mb/s.
    assert mb_per_s(1e6, 1.0) == pytest.approx(8.0)
    assert mb_per_s(1e6, 1.0, bits=False) == pytest.approx(1.0)


def test_makespan():
    assert makespan([1.0, 2.0], [5.0, 9.0]) == 8.0
    assert makespan([], []) == 0.0


def test_format_seconds():
    assert format_seconds(0.0005) == "0.5ms"
    assert format_seconds(5.2) == "5.2s"
    assert format_seconds(600) == "10.0m"
    assert format_seconds(7200) == "2.00h"
    assert format_seconds(-5.0) == "-5.0s"


def test_render_table_alignment_and_missing():
    out = render_table(
        "T", ["a", "b"], [{"a": 1.23456, "b": "x"}, {"a": 2.0}]
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "1.235" in out and "-" in out


def test_render_series_bars():
    out = render_series("S", [1, 2], [10.0, 20.0], "nodes", "rate")
    assert "nodes" in out and "#" in out
    assert out.count("\n") >= 4


def test_render_series_length_mismatch():
    with pytest.raises(ValueError):
        render_series("S", [1], [1.0, 2.0])
