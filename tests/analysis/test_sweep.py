"""Parameter-sweep utility."""

import pytest

from repro.analysis import grid_points, sweep


def test_grid_points_cartesian_last_fastest():
    pts = grid_points({"a": [1, 2], "b": ["x", "y"]})
    assert pts == [
        {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
        {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
    ]


def test_grid_points_empty_grid():
    assert grid_points({}) == [{}]


def test_grid_points_empty_dimension():
    assert grid_points({"a": []}) == []


def test_grid_points_rejects_string_values():
    with pytest.raises(TypeError):
        grid_points({"a": "abc"})


def test_sweep_merges_params_and_results():
    rows = sweep(lambda a, b: {"total": a + b}, {"a": [1, 2], "b": [10]})
    assert rows == [{"a": 1, "b": 10, "total": 11}, {"a": 2, "b": 10, "total": 12}]


def test_sweep_repeats_add_repeat_column():
    rows = sweep(lambda x, repeat: {"y": x * repeat}, {"x": [3]}, repeats=3)
    assert [r["repeat"] for r in rows] == [0, 1, 2]
    assert [r["y"] for r in rows] == [0, 3, 6]


def test_sweep_collision_detected():
    with pytest.raises(ValueError):
        sweep(lambda a: {"a": 1}, {"a": [1]})


def test_sweep_non_mapping_result_rejected():
    with pytest.raises(TypeError):
        sweep(lambda a: 42, {"a": [1]})


def test_sweep_repeats_validation():
    with pytest.raises(ValueError):
        sweep(lambda: {}, {}, repeats=0)
