"""Parallel-profile extraction."""

import numpy as np
import pytest

from repro import Parallel
from repro.analysis import concurrency_timeline, profile_intervals


def test_timeline_simple_overlap():
    # Two jobs overlapping in the middle.
    times, counts = concurrency_timeline([0.0, 1.0], [2.0, 3.0])
    assert list(times) == [0.0, 1.0, 2.0, 3.0]
    assert list(counts) == [1, 2, 1, 0]


def test_timeline_empty():
    times, counts = concurrency_timeline([], [])
    assert times.size == 0 and counts.size == 0


def test_timeline_validation():
    with pytest.raises(ValueError):
        concurrency_timeline([0.0], [])
    with pytest.raises(ValueError):
        concurrency_timeline([2.0], [1.0])


def test_timeline_simultaneous_start_end():
    # Back-to-back jobs sharing an instant: never dips below zero, the
    # start at t=1 is counted before the end at t=1.
    times, counts = concurrency_timeline([0.0, 1.0], [1.0, 2.0])
    assert (counts >= 0).all()
    assert counts[-1] == 0


def test_profile_serial_run():
    p = profile_intervals([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
    assert p.peak_concurrency == 1
    assert p.serial_fraction == pytest.approx(1.0)
    assert p.speedup_vs_serial == pytest.approx(1.0)
    assert p.makespan == 3.0


def test_profile_perfectly_parallel():
    p = profile_intervals([0.0] * 4, [1.0] * 4)
    assert p.peak_concurrency == 4
    assert p.mean_concurrency == pytest.approx(4.0)
    assert p.speedup_vs_serial == pytest.approx(4.0)
    assert p.serial_fraction == 0.0
    assert p.utilization(4) == pytest.approx(1.0)
    assert p.utilization(8) == pytest.approx(0.5)


def test_profile_empty():
    p = profile_intervals([], [])
    assert p.n_jobs == 0 and p.makespan == 0.0


def test_utilization_validation():
    p = profile_intervals([0.0], [1.0])
    with pytest.raises(ValueError):
        p.utilization(0)


def test_profile_from_real_engine_run():
    summary = Parallel("sleep 0.2 # {}", jobs=4).run(list(range(8)))
    starts = [r.start_time for r in summary.results]
    ends = [r.end_time for r in summary.results]
    p = profile_intervals(starts, ends)
    assert p.n_jobs == 8
    assert 2 <= p.peak_concurrency <= 4  # bounded by -j4
    assert p.speedup_vs_serial > 1.5  # parallelism clearly visible
