"""Running GNU Parallel command lines through the engine."""

import pytest

from repro.compat import expand_command_line, run_gnu_parallel
from repro.errors import OptionsError


def test_expand_command_line_listing5():
    tokens = expand_command_line(
        "parallel -j36 python3 ./darshan_arch.py ::: {1..12} ::: {0..2}"
    )
    assert tokens[:4] == ["parallel", "-j36", "python3", "./darshan_arch.py"]
    assert tokens.count(":::") == 2
    assert "12" in tokens and "0" in tokens


def test_listing5_dry_run_produces_36_commands():
    summary = run_gnu_parallel(
        "parallel -j36 python3 ./darshan_arch.py ::: {1..12} ::: {0..2}",
        dry_run=True,
    )
    assert summary.n_dispatched == 36
    commands = {r.stdout.strip() for r in summary.results}
    assert "python3 ./darshan_arch.py 1 0" in commands
    assert "python3 ./darshan_arch.py 12 2" in commands


def test_real_execution_with_keep_order():
    summary = run_gnu_parallel("parallel -k -j2 echo {} ::: a b c")
    assert summary.ok
    assert [r.stdout.strip() for r in summary.sorted_results()] == ["a", "b", "c"]


def test_celeritas_gpu_isolation_line_renders():
    """The §IV-D execution line parses and renders with slot-based devices."""
    summary = run_gnu_parallel(
        "parallel -j8 'HIP_VISIBLE_DEVICES=\"$(({%} - 1))\" celer-sim {}' "
        "::: a.inp.json b.inp.json",
        dry_run=True,
    )
    assert summary.n_dispatched == 2
    for r in summary.results:
        assert "celer-sim" in r.stdout
        assert "HIP_VISIBLE_DEVICES" in r.stdout


def test_stdin_input_via_input_text():
    summary = run_gnu_parallel("parallel -k echo got {}", input_text="x\ny\n")
    assert [r.stdout.strip() for r in summary.sorted_results()] == ["got x", "got y"]


def test_pipe_mode_command_line():
    summary = run_gnu_parallel(
        "parallel --pipe -N 2 wc -l", input_text="1\n2\n3\n4\n5\n"
    )
    assert summary.ok
    assert sum(int(r.stdout) for r in summary.results) == 5


def test_rejects_non_parallel_command():
    with pytest.raises(OptionsError):
        run_gnu_parallel("ls -la")


def test_rejects_missing_template():
    with pytest.raises(OptionsError):
        run_gnu_parallel("parallel ::: a b")


def test_linked_sources():
    summary = run_gnu_parallel(
        "parallel -k --link echo {1}{2} ::: a b ::: 1 2"
    )
    assert [r.stdout.strip() for r in summary.sorted_results()] == ["a1", "b2"]


def test_data_motion_line_parses():
    """§IV-E's transfer line (rsync flags pass through untouched)."""
    summary = run_gnu_parallel(
        "parallel -j32 rsync -R -Ha {} /lustre/proj/ ::: /gpfs/a /gpfs/b",
        dry_run=True,
    )
    cmds = sorted(r.stdout.strip() for r in summary.results)
    assert cmds == [
        "rsync -R -Ha /gpfs/a /lustre/proj/",
        "rsync -R -Ha /gpfs/b /lustre/proj/",
    ]
