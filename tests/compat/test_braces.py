"""Bash brace expansion semantics."""

import pytest

from repro.compat import brace_expand


def test_numeric_sequence():
    assert brace_expand("{1..5}") == ["1", "2", "3", "4", "5"]


def test_paper_listing5_sequences():
    assert brace_expand("{1..12}") == [str(i) for i in range(1, 13)]
    assert brace_expand("{0..2}") == ["0", "1", "2"]


def test_descending_sequence():
    assert brace_expand("{5..1}") == ["5", "4", "3", "2", "1"]


def test_negative_sequence():
    assert brace_expand("{-2..2}") == ["-2", "-1", "0", "1", "2"]


def test_sequence_with_increment():
    assert brace_expand("{0..10..5}") == ["0", "5", "10"]
    assert brace_expand("{10..0..5}") == ["10", "5", "0"]


def test_zero_padded_sequence():
    assert brace_expand("{01..03}") == ["01", "02", "03"]
    assert brace_expand("{08..11}") == ["08", "09", "10", "11"]


def test_letter_sequence():
    assert brace_expand("{a..e}") == ["a", "b", "c", "d", "e"]
    assert brace_expand("{c..a}") == ["c", "b", "a"]


def test_comma_list():
    assert brace_expand("{x,y,z}") == ["x", "y", "z"]


def test_prefix_suffix():
    assert brace_expand("img{1..3}.png") == ["img1.png", "img2.png", "img3.png"]


def test_multiple_groups_cartesian():
    assert brace_expand("{a,b}{1,2}") == ["a1", "a2", "b1", "b2"]


def test_nested_groups():
    assert brace_expand("{a,b{1,2}}") == ["a", "b1", "b2"]


def test_empty_alternative():
    assert brace_expand("file{,.bak}") == ["file", "file.bak"]


def test_replacement_strings_never_expand():
    assert brace_expand("{}") == ["{}"]
    assert brace_expand("{#}") == ["{#}"]
    assert brace_expand("{%}") == ["{%}"]
    assert brace_expand("{1}") == ["{1}"]
    assert brace_expand("{1/.}") == ["{1/.}"]


def test_single_item_brace_is_literal():
    assert brace_expand("{foo}") == ["{foo}"]


def test_unbalanced_braces_literal():
    assert brace_expand("{a,b") == ["{a,b"]
    assert brace_expand("a}b") == ["a}b"]


def test_plain_word_unchanged():
    assert brace_expand("hello") == ["hello"]
    assert brace_expand("") == [""]


def test_literal_group_followed_by_expandable():
    assert brace_expand("{}{1..2}") == ["{}1", "{}2"]
